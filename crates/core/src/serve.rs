//! Prediction-as-a-service: an overload-safe batched request loop in
//! front of the surrogate engine.
//!
//! The suite answers one fixed experiment matrix and exits; this module
//! turns the same substrate into something that can be *queried*. A
//! [`PredictionService`] owns a corpus, a (bounded) [`SuiteCaches`]
//! bundle, and a [`SurrogateEngine`], and answers jobs of the form
//! *(kernel, hardware, model, shot-style)* over a line protocol:
//!
//! ```text
//! predict id=j1 kernel=cuda-saxpy-0000 spec=rtx-3080 model=gpt-4o shots=zero
//! predict id=j2 kernel=cuda-saxpy-0000 spec=rtx-3080 model=o1 shots=few deadline_ms=50
//! predict id=j3 src=__global__%20void%20k... spec=rtx-3080
//! stats
//! drain
//! quit
//! ```
//!
//! Each `predict` answers with exactly one line —
//! `ok id=... prediction=Compute truth=Bandwidth correct=false` on
//! success, `err id=... kind=spec error="..."` on a bad job,
//! `err id=... kind=overload shed=queue ...` when load-shed, and
//! `err id=... kind=timeout ...` when its deadline expires — and
//! `stats` reports job/cache/ledger totals. Responses never carry
//! timing, so a transcript is byte-reproducible across thread counts,
//! batch sizes, and cache bounds.
//!
//! ## Raw-source jobs
//!
//! A `predict` line may carry `src=` (percent-encoded kernel source, see
//! [`encode_src`]/[`decode_src`]) instead of `kernel=`/`model=`/`shots=`.
//! At admission the server runs the full static pipeline —
//! lex → structure → diagnose → estimate — over the *untrusted* source:
//! source with error-severity hazard diagnostics (data races, missing
//! barriers, missing reduction clauses) is rejected with a typed
//! [`PceError::Lint`] (`err id=... kind=lint ...`, counted in the
//! ledger's `lint` column), and clean source answers
//! `ok id=... kernel=<name> model=static prediction=<label>
//! margin=<decades> warnings=<n>` with a static roofline label against
//! the requested spec. The pass is deterministic and span-stable, so
//! raw-source transcripts are byte-identical across thread counts and
//! batch sizes.
//!
//! ## Admission batching
//!
//! Jobs are admitted in batches ([`PredictionService::predict_batch`],
//! driven by [`PredictionService::serve_session`]): within a batch, jobs
//! that share a *(kernel, spec, shot-style)* group profile the kernel
//! and render the Fig.-4 prompt **once**, exactly as the suite's Table-1
//! assembly amortizes renders across the model zoo. Groups and then
//! per-job completions fan out across the rayon pool.
//!
//! ## Overload model
//!
//! Time inside a session is *virtual*: the clock (`vnow`, in virtual
//! milliseconds) advances only on wire-chaos stalls, and each dispatched
//! job advances a `busy_until` horizon by [`ServeConfig::cost_ms_per_job`].
//! Nothing ever sleeps. On that clock the server enforces, in order:
//!
//! 1. **Drain** — after a `drain` command (or EOF / disconnect) admission
//!    stops; late jobs are shed with `shed=drain`.
//! 2. **Circuit breaker** — per model, [`ServeConfig::breaker_threshold`]
//!    consecutive invalid/refused responses open the breaker; while open,
//!    a seeded half-open probe (rate [`ServeConfig::breaker_probe_rate`])
//!    admits the occasional job, and a probe success closes it. Shed jobs
//!    answer `shed=breaker` and count in `breaker_open`.
//! 3. **Bounded queue** — with [`ServeConfig::queue_depth`] set, a job
//!    arriving while the server is busy (`vnow < busy_until`) and the
//!    queue is full is shed with `shed=queue` instead of queuing forever.
//! 4. **Deadlines** — `deadline_ms=` (or the server default) is enforced
//!    at admission (the earliest possible dispatch already misses it), at
//!    batch formation (overdue queued jobs answer `err timeout` without
//!    costing a completion), and at completion fan-out (retry backoff is
//!    budgeted to the remaining deadline via
//!    [`RetryPolicy::backoff_budget_ms`](pce_fault::RetryPolicy), and a
//!    chunk that finishes past a job's deadline expires it).
//!
//! Every admitted job is answered exactly once, and the per-model ledger
//! keeps the extended invariant
//! `injected == retried_valid + invalid + refused` ∧
//! `admitted == completed + shed + expired + lint`.
//!
//! ## Determinism
//!
//! A job's sampling seed is derived from its *(kernel, spec, model,
//! shot-style)* identity — never from its request id, arrival order, or
//! batch position. Wire faults are drawn per line from the chaos seed,
//! breaker probes from the study seed, and the virtual clock from the
//! input stream alone — so the full transcript, including which jobs
//! were shed or expired, is byte-identical across `RAYON_NUM_THREADS`,
//! queue depths that do not change admission decisions, and repeated
//! runs. With an unbounded queue, no deadlines, and chaos off, the
//! transcript reduces exactly to the historical (pre-overload) behavior.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::sync::Mutex;

use rayon::prelude::*;

use pce_fault::{seeded_unit, PceError, ResponseAccounting, RetryPolicy, WireFault, WirePlan};
use pce_gpu_sim::Profiler;
use pce_kernels::{build_corpus, Program};
use pce_llm::{SamplingParams, SurrogateEngine};
use pce_memo::Fnv;
use pce_prompt::{render_classify_prompt, ClassifyRequest, ShotStyle};
use pce_roofline::{classify_joint, Boundedness, HardwareSpec};

use crate::caches::{CacheBudget, SuiteCaches};
use crate::study::Study;

/// The committed `BENCH_serve.json` shape: the `loadgen` bin's latency /
/// throughput baseline plus its bounded-vs-unbounded identity check and
/// (since the overload work) its storm-mode shedding profile.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeBenchReport {
    /// Jobs replayed per measured run.
    pub jobs: usize,
    /// Admission batch size.
    pub batch: usize,
    /// Job-mix seed.
    pub seed: u64,
    /// Per-cache byte capacity of the bounded runs.
    pub cache_bytes: u64,
    /// Bounded-vs-unbounded determinism check.
    pub identity: IdentityCheck,
    /// One latency/throughput point per measured thread count.
    pub threads: Vec<ThreadPoint>,
    /// Overload behavior under `loadgen --storm` (absent in reports
    /// written before storm mode existed).
    #[serde(default)]
    pub storm: Option<StormReport>,
}

/// Result of replaying the same job mix against a bounded and an
/// unbounded service.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdentityCheck {
    /// Whether the two response transcripts were byte-identical.
    pub bounded_equals_unbounded: bool,
    /// Evictions the bounded run performed (must be > 0 for the check to
    /// mean anything).
    pub evictions: u64,
    /// Resident cache bytes in the bounded service after the run.
    pub resident_bytes: u64,
}

/// Latency/throughput at one `RAYON_NUM_THREADS` setting. Per-job latency
/// is its admission batch's wall-clock (every job in a batch completes
/// when the batch does).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThreadPoint {
    /// Worker threads.
    pub threads: usize,
    /// Median per-job latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-job latency in milliseconds.
    pub p99_ms: f64,
    /// Sustained predictions per second over the whole run.
    pub predictions_per_sec: f64,
    /// Total wall-clock of the run in milliseconds.
    pub total_ms: f64,
}

/// Shedding and goodput under the `loadgen --storm` overload run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StormReport {
    /// Jobs submitted by the storm.
    pub jobs: usize,
    /// Admission queue depth the storm ran against.
    pub queue_depth: usize,
    /// Per-job deadline applied by the storm, in virtual ms.
    pub deadline_ms: u64,
    /// Jobs answered with a completion.
    pub completed: u64,
    /// Jobs shed under load (queue, breaker, or drain).
    pub shed: u64,
    /// Jobs that missed their deadline.
    pub expired: u64,
    /// `shed / jobs`.
    pub shed_rate: f64,
    /// Completed predictions per wall-clock second.
    pub goodput_per_sec: f64,
    /// Whether the storm transcript was byte-identical across the
    /// measured thread counts.
    pub transcript_identical_across_threads: bool,
}

/// One prediction job, as parsed from a `predict` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Caller-chosen request id, echoed verbatim in the response.
    pub id: String,
    /// Corpus program id, e.g. `cuda-saxpy-0000`.
    pub kernel: String,
    /// Hardware preset name (resolved case/format-insensitively).
    pub spec: String,
    /// Model-zoo model name.
    pub model: String,
    /// Zero- or few-shot prompting.
    pub style: ShotStyle,
    /// Per-job deadline in virtual milliseconds (`deadline_ms=`);
    /// `None` falls back to the server default.
    pub deadline_ms: Option<u64>,
    /// Decoded raw kernel source for `src=` jobs; `None` for corpus
    /// jobs. Raw-source jobs carry `kernel = "-"`, `model =`
    /// [`STATIC_MODEL`], and zero-shot style.
    pub src: Option<String>,
}

/// The ledger bucket raw-source (`src=`) jobs are accounted under: they
/// are answered by the static analyzer, not a zoo model.
pub const STATIC_MODEL: &str = "static";

/// Percent-encode raw kernel source for the whitespace-split line
/// protocol: every byte outside `[A-Za-z0-9_.~-]` becomes `%XX`.
pub fn encode_src(src: &str) -> String {
    let mut out = String::with_capacity(src.len() + src.len() / 2);
    for b in src.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(
                    char::from_digit(u32::from(b >> 4), 16)
                        .unwrap_or('0')
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit(u32::from(b & 0xf), 16)
                        .unwrap_or('0')
                        .to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

/// Decode a percent-encoded `src=` value back into source text.
pub fn decode_src(enc: &str) -> Result<String, PceError> {
    let bytes = enc.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = enc
                .get(i + 1..i + 3)
                .ok_or_else(|| PceError::parse("truncated %-escape in src"))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| PceError::parse(format!("bad %-escape '%{hex}' in src")))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| PceError::parse("src is not valid UTF-8"))
}

/// One parsed protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// A prediction job.
    Predict(Job),
    /// Report job/cache/ledger totals.
    Stats,
    /// Stop admission, flush in-flight work, report final stats — but
    /// keep answering `stats` until `quit`/EOF.
    Drain,
    /// Flush pending jobs and stop serving.
    Quit,
}

impl Command {
    /// Parse one protocol line (leading/trailing whitespace ignored).
    ///
    /// Duplicate and unknown `key=` tokens are rejected with a
    /// [`PceError::Parse`] naming the offending key; `stats`, `drain`,
    /// and `quit` reject trailing tokens for the same reason.
    pub fn parse(line: &str) -> Result<Command, PceError> {
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().unwrap_or("");
        match verb {
            "stats" | "drain" | "quit" => {
                if let Some(extra) = tokens.next() {
                    return Err(PceError::parse(format!(
                        "{verb} takes no arguments, got '{extra}'"
                    )));
                }
                Ok(match verb {
                    "stats" => Command::Stats,
                    "drain" => Command::Drain,
                    _ => Command::Quit,
                })
            }
            "predict" => {
                let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
                for tok in tokens {
                    let (k, v) = tok.split_once('=').ok_or_else(|| {
                        PceError::parse(format!("expected key=value, got '{tok}'"))
                    })?;
                    if fields.insert(k, v).is_some() {
                        return Err(PceError::parse(format!("duplicate field '{k}'")));
                    }
                }
                let take = |fields: &BTreeMap<&str, &str>, k: &str| -> Result<String, PceError> {
                    fields
                        .get(k)
                        .map(|v| v.to_string())
                        .ok_or_else(|| PceError::parse(format!("predict needs {k}=...")))
                };
                let deadline_ms = fields
                    .get("deadline_ms")
                    .map(|v| {
                        v.parse::<u64>().map_err(|_| {
                            PceError::parse(format!(
                                "deadline_ms must be a non-negative integer, got '{v}'"
                            ))
                        })
                    })
                    .transpose()?;
                for k in fields.keys() {
                    if !matches!(
                        *k,
                        "id" | "kernel" | "spec" | "model" | "shots" | "deadline_ms" | "src"
                    ) {
                        return Err(PceError::parse(format!("unknown field '{k}'")));
                    }
                }
                if fields.contains_key("src") {
                    // A raw-source job: the static analyzer answers it, so
                    // the corpus/model/shot fields make no sense here.
                    for k in ["kernel", "model", "shots"] {
                        if fields.contains_key(k) {
                            return Err(PceError::parse(format!(
                                "src= is mutually exclusive with {k}="
                            )));
                        }
                    }
                    let src = decode_src(&take(&fields, "src")?)?;
                    return Ok(Command::Predict(Job {
                        id: take(&fields, "id")?,
                        kernel: "-".to_string(),
                        spec: take(&fields, "spec")?,
                        model: STATIC_MODEL.to_string(),
                        style: ShotStyle::ZeroShot,
                        deadline_ms,
                        src: Some(src),
                    }));
                }
                let style = match take(&fields, "shots")?.as_str() {
                    "zero" => ShotStyle::ZeroShot,
                    "few" => ShotStyle::FewShot,
                    other => {
                        return Err(PceError::parse(format!(
                            "shots must be zero|few, got '{other}'"
                        )))
                    }
                };
                Ok(Command::Predict(Job {
                    id: take(&fields, "id")?,
                    kernel: take(&fields, "kernel")?,
                    spec: take(&fields, "spec")?,
                    model: take(&fields, "model")?,
                    style,
                    deadline_ms,
                    src: None,
                }))
            }
            other => Err(PceError::parse(format!(
                "unknown command '{other}' (expected predict|stats|drain|quit)"
            ))),
        }
    }
}

/// Collapse a (possibly multi-line) error display into one protocol-safe
/// line: responses are one line each, but some error sources (the
/// hardware-preset catalog listing, for one) render across many.
fn one_line(msg: impl std::fmt::Display) -> String {
    msg.to_string().replace('\n', "; ").replace('"', "'")
}

/// Serving-side knobs for one [`PredictionService::serve_session`].
///
/// The default configuration — unbounded queue, no deadline, breaker
/// that only trips under chaos — reproduces the historical protocol
/// behavior byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Admission batch size (jobs grouped per dispatch).
    pub batch: usize,
    /// Admission queue depth; `None` queues without bound (the
    /// historical behavior), `Some(d)` sheds jobs that arrive while the
    /// server is busy with `d` jobs already queued.
    pub queue_depth: Option<usize>,
    /// Deadline applied to jobs that carry no `deadline_ms=` of their
    /// own, in virtual milliseconds.
    pub default_deadline_ms: Option<u64>,
    /// Virtual service cost per dispatched job, in milliseconds — the
    /// unit the `busy_until` horizon advances by.
    pub cost_ms_per_job: u64,
    /// Consecutive invalid/refused responses that open a model's
    /// circuit breaker.
    pub breaker_threshold: u32,
    /// Probability an open breaker admits a half-open probe, drawn
    /// deterministically from the study seed.
    pub breaker_probe_rate: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch: 8,
            queue_depth: None,
            default_deadline_ms: None,
            cost_ms_per_job: 2,
            breaker_threshold: 4,
            breaker_probe_rate: 0.25,
        }
    }
}

impl ServeConfig {
    /// The historical protocol loop at this batch size: unbounded queue,
    /// no deadlines.
    pub fn classic(batch: usize) -> ServeConfig {
        ServeConfig {
            batch,
            ..ServeConfig::default()
        }
    }
}

/// What a [`CircuitBreaker`] decided about one arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Breaker closed: admit normally.
    Admit,
    /// Breaker open, but this job is a half-open probe: admit it and let
    /// its outcome close (or keep open) the breaker.
    Probe,
    /// Breaker open: shed.
    Shed,
}

#[derive(Debug, Default, Clone)]
struct BreakerState {
    consecutive: u32,
    open: bool,
    /// Bumped on every open/close transition so each open period draws
    /// a fresh probe stream.
    epoch: u64,
    /// Draws made in the current epoch.
    draws: u64,
}

/// A deterministic per-model circuit breaker.
///
/// `threshold` consecutive failed responses (invalid or refused) open a
/// model's breaker; while open, each arriving job for that model draws a
/// seeded half-open probe with probability `probe_rate` — the draw is
/// keyed on (seed, model, epoch, draw index), never on wall-clock or
/// thread scheduling, so trip/probe/close sequences are byte-reproducible.
/// A probe that succeeds closes the breaker; one that fails keeps it open.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    probe_rate: f64,
    seed: u64,
    states: BTreeMap<String, BreakerState>,
}

/// Salt separating breaker probe draws from the chaos streams.
const BREAKER_SALT: u64 = 0xfa_17_00_04;

impl CircuitBreaker {
    /// A breaker tripping after `threshold` consecutive failures (min 1),
    /// probing at `probe_rate` from `seed`.
    pub fn new(threshold: u32, probe_rate: f64, seed: u64) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            probe_rate: probe_rate.clamp(0.0, 1.0),
            seed,
            states: BTreeMap::new(),
        }
    }

    /// Whether `model`'s breaker is currently open.
    pub fn is_open(&self, model: &str) -> bool {
        self.states.get(model).map(|s| s.open).unwrap_or(false)
    }

    /// Decide admission for one arriving job of `model`.
    pub fn admit(&mut self, model: &str) -> BreakerDecision {
        let state = self.states.entry(model.to_string()).or_default();
        if !state.open {
            return BreakerDecision::Admit;
        }
        state.draws += 1;
        let u = seeded_unit(&[
            &(self.seed ^ BREAKER_SALT).to_le_bytes(),
            model.as_bytes(),
            &state.epoch.to_le_bytes(),
            &state.draws.to_le_bytes(),
        ]);
        if u < self.probe_rate {
            BreakerDecision::Probe
        } else {
            BreakerDecision::Shed
        }
    }

    /// Record one completed response for `model`: `success` means the
    /// answer was valid (first try or retried); failure means invalid or
    /// refused.
    pub fn record(&mut self, model: &str, success: bool) {
        let state = self.states.entry(model.to_string()).or_default();
        if success {
            state.consecutive = 0;
            if state.open {
                state.open = false;
                state.epoch += 1;
                state.draws = 0;
            }
        } else {
            state.consecutive = state.consecutive.saturating_add(1);
            if !state.open && state.consecutive >= self.threshold {
                state.open = true;
                state.epoch += 1;
                state.draws = 0;
            }
        }
    }
}

/// Profiled-and-rendered state shared by every job in one
/// (kernel, spec, shot-style) admission group.
struct GroupPrep {
    prompt: String,
    truth: Boundedness,
}

/// A job waiting in the admission queue, stamped with its arrival on the
/// virtual clock and its resolved deadline.
#[derive(Debug, Clone)]
struct QueuedJob {
    job: Job,
    arrival_ms: u64,
    deadline_ms: Option<u64>,
}

/// How one admitted job left the serving layer.
enum ServeOutcome {
    Completed,
    Expired,
    /// A raw-source job rejected by error-severity static diagnostics.
    LintRejected,
}

/// One fanned-out job before the ledger merge: response line, response
/// accounting, resolution, and the optional `(model, success)` breaker
/// signal.
type FannedAnswer = (
    String,
    ResponseAccounting,
    ServeOutcome,
    Option<(String, bool)>,
);

/// One answered job from a dispatched chunk.
struct Answer {
    line: String,
    /// `(model, success)` when a model actually responded — feeds the
    /// circuit breaker in request order.
    breaker_signal: Option<(String, bool)>,
}

struct ChunkResult {
    answers: Vec<Answer>,
    /// The virtual time the chunk finished.
    t_end: u64,
}

/// A long-lived prediction service over one study's corpus.
pub struct PredictionService {
    study: Study,
    programs: Vec<Program>,
    index: HashMap<String, usize>,
    caches: SuiteCaches,
    engine: SurrogateEngine,
    policy: RetryPolicy,
    ledgers: Mutex<BTreeMap<String, ResponseAccounting>>,
}

impl PredictionService {
    /// Build a service: generate the study's corpus, stand up a cache
    /// bundle (bounded per `budget`, unbounded when `None`), and wire the
    /// engine through it — chaos included if the study carries any.
    /// Fails only when corpus generation does.
    pub fn new(study: Study, budget: Option<CacheBudget>) -> Result<PredictionService, PceError> {
        let programs = build_corpus(&study.corpus)?;
        let index = programs
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id.clone(), i))
            .collect();
        let caches = match budget {
            Some(b) => SuiteCaches::with_budget(b),
            None => SuiteCaches::new(),
        };
        let engine = SurrogateEngine::with_caches_and_faults(
            caches.llm.clone(),
            study.chaos.as_ref().map(|c| c.plan.clone()),
        );
        let policy = study.chaos.as_ref().map(|c| c.retry).unwrap_or_default();
        Ok(PredictionService {
            study,
            programs,
            index,
            caches,
            engine,
            policy,
            ledgers: Mutex::new(BTreeMap::new()),
        })
    }

    /// The corpus this service answers jobs against, in corpus order.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// The cache bundle (for effectiveness reporting).
    pub fn caches(&self) -> &SuiteCaches {
        &self.caches
    }

    /// The study's wire-chaos plan, when one is active.
    fn wire_plan(&self) -> Option<WirePlan> {
        self.study
            .chaos
            .as_ref()
            .map(|c| c.plan.wire_plan())
            .filter(|w| w.is_active())
    }

    /// Total `predict` jobs admitted so far (including shed and expired).
    pub fn jobs_served(&self) -> u64 {
        self.ledger().admitted
    }

    /// The service-wide ledger: every per-model bucket merged.
    pub fn ledger(&self) -> ResponseAccounting {
        self.ledgers
            .lock()
            .map(|map| {
                map.values()
                    .fold(ResponseAccounting::new(), |acc, l| acc.merged(l))
            })
            .unwrap_or_default()
    }

    /// The per-model ledgers, keyed by the model name jobs arrived with.
    pub fn ledgers(&self) -> BTreeMap<String, ResponseAccounting> {
        self.ledgers
            .lock()
            .map(|map| map.clone())
            .unwrap_or_default()
    }

    /// Whether the extended ledger invariant
    /// (`injected == retried_valid + invalid + refused` ∧
    /// `admitted == completed + shed + expired + lint`) holds globally
    /// *and* in every per-model bucket.
    pub fn ledger_balanced(&self) -> bool {
        self.ledgers
            .lock()
            .map(|map| map.values().all(|l| l.balanced()))
            .unwrap_or(false)
            && self.ledger().balanced()
    }

    /// The one-line `stats` response: totals, then per-model overload
    /// segments (`overload[model]=shed/expired/breaker_open`) for every
    /// model that shed or expired anything.
    pub fn stats_line(&self) -> String {
        let report = self.caches.report();
        let (hits, misses) = report
            .layers()
            .iter()
            .fold((0, 0), |(h, m), (_, c)| (h + c.hits, m + c.misses));
        let total = self.ledger();
        let mut line = format!(
            "stats jobs={} cache_hits={hits} cache_misses={misses} evictions={} resident_bytes={} completed={} shed={} expired={} breaker_open={} lint={} ledger_balanced={}",
            total.admitted,
            report.total_evictions(),
            report.total_resident_bytes(),
            total.completed,
            total.shed,
            total.expired,
            total.breaker_open,
            total.lint,
            self.ledger_balanced(),
        );
        for (model, l) in self.ledgers() {
            if l.shed + l.expired + l.breaker_open > 0 {
                line.push_str(&format!(
                    " overload[{model}]={}/{}/{}",
                    l.shed, l.expired, l.breaker_open
                ));
            }
        }
        line
    }

    /// The deterministic sampling seed of one job: a fingerprint of its
    /// *(kernel, spec, model, shot-style)* identity folded into the study
    /// seed. Request ids and arrival order never enter.
    fn job_seed(&self, job: &Job) -> u64 {
        let mut h = Fnv::new();
        h.str(&job.kernel);
        h.str(&job.spec);
        h.str(&job.model);
        h.u64(matches!(job.style, ShotStyle::FewShot) as u64);
        self.study.seed ^ h.finish()
    }

    /// Resolve a job against the corpus, preset catalog, and model zoo.
    fn resolve(&self, job: &Job) -> Result<(usize, HardwareSpec), PceError> {
        let prog = *self
            .index
            .get(&job.kernel)
            .ok_or_else(|| PceError::spec(format!("unknown kernel '{}'", job.kernel)))?;
        let spec = HardwareSpec::preset_by_name(&job.spec)
            .map_err(|e| PceError::spec(format!("spec '{}': {e}", job.spec)))?;
        if pce_llm::zoo::model(&job.model).is_none() {
            return Err(PceError::spec(format!("unknown model '{}'", job.model)));
        }
        Ok((prog, spec))
    }

    /// Account one shed job (never dispatched).
    fn account_shed(&self, model: &str, breaker: bool) {
        if let Ok(mut map) = self.ledgers.lock() {
            let l = map.entry(model.to_string()).or_default();
            l.admitted += 1;
            l.shed += 1;
            if breaker {
                l.breaker_open += 1;
            }
        }
    }

    /// Account one job expired at admission (never dispatched).
    fn account_admission_expiry(&self, model: &str) {
        if let Ok(mut map) = self.ledgers.lock() {
            let l = map.entry(model.to_string()).or_default();
            l.admitted += 1;
            l.expired += 1;
        }
    }

    /// Answer one raw-source job: run the full static pipeline
    /// (lex → structure → diagnose → estimate) over the untrusted
    /// source, reject hazards, and label clean source against the
    /// requested spec's static rooflines.
    ///
    /// Errors map to response kinds: unknown spec / kernel-free source →
    /// [`PceError::Spec`]; error-severity diagnostics →
    /// [`PceError::Lint`] naming each firing rule. The whole path is a
    /// pure function of `(src, spec)` — no cache, clock, or seed — so
    /// the answer line is byte-stable across batches and thread counts.
    fn static_answer(&self, job: &Job, src: &str) -> Result<String, PceError> {
        use pce_static_analysis::{analyze, AnalyzeOptions, Severity};
        let spec = HardwareSpec::preset_by_name(&job.spec)
            .map_err(|e| PceError::spec(format!("spec '{}': {e}", job.spec)))?;
        let analysis = analyze(src, &AnalyzeOptions::default());
        let errors: Vec<String> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| {
                format!(
                    "{} at {}:{}: {}",
                    d.rule, d.span.line, d.span.col, d.message
                )
            })
            .collect();
        if !errors.is_empty() {
            let shown = errors.len().min(3);
            let mut what = errors[..shown].join("; ");
            if errors.len() > shown {
                what.push_str(&format!(" (+{} more)", errors.len() - shown));
            }
            return Err(PceError::lint(what));
        }
        let kernel = analysis.kernels.first().ok_or_else(|| {
            PceError::spec("src contains no CUDA __global__ kernel or OMP target region")
        })?;
        // Static roofline label: the best margin (in decades) of any op
        // class's static AI over the spec's ridge point decides the side,
        // mirroring the deep readers' mental model in `pce_llm`.
        let mut verdict = Boundedness::Bandwidth;
        let mut best_margin = f64::NEG_INFINITY;
        for (idx, class) in pce_roofline::OpClass::ALL.iter().enumerate() {
            let ai = kernel.tally.ai(idx);
            if ai <= 0.0 {
                continue;
            }
            let m = if ai.is_infinite() {
                3.0
            } else {
                (ai / spec.ridge_point(*class)).log10()
            };
            best_margin = best_margin.max(m);
            if m >= 0.0 {
                verdict = Boundedness::Compute;
            }
        }
        if best_margin == f64::NEG_INFINITY {
            best_margin = -1.0; // no ops counted at all: far-bandwidth guess
        }
        Ok(format!(
            "ok id={} kernel={} model={STATIC_MODEL} prediction={} margin={:+.2} warnings={}",
            job.id,
            kernel.name,
            verdict.answer_token(),
            best_margin,
            analysis.diagnostics.len(),
        ))
    }

    /// Answer one admission batch with no queue, deadlines, or virtual
    /// clock — the direct replay entry point. Responses come back aligned
    /// with `jobs`, one line each; invalid jobs get `err` lines and cost
    /// nothing. Jobs sharing a (kernel, spec, shot-style) group profile
    /// and render once, then completions fan out per job.
    pub fn predict_batch(&self, jobs: &[Job]) -> Vec<String> {
        let queued: Vec<QueuedJob> = jobs
            .iter()
            .map(|job| QueuedJob {
                job: job.clone(),
                arrival_ms: 0,
                deadline_ms: None,
            })
            .collect();
        self.run_chunk(&queued, 0, 0)
            .answers
            .into_iter()
            .map(|a| a.line)
            .collect()
    }

    /// Dispatch one chunk of queued jobs at virtual time `dispatch_ms`.
    ///
    /// Deadline enforcement: jobs already past their deadline at batch
    /// formation answer `err timeout` without costing a completion;
    /// dispatched jobs get their retry backoff budgeted to the remaining
    /// deadline; and jobs whose chunk finishes past their deadline expire
    /// at completion fan-out. Expired-after-dispatch jobs still merge
    /// their response accounting, keeping the `injected` balance exact.
    fn run_chunk(&self, chunk: &[QueuedJob], dispatch_ms: u64, cost_ms: u64) -> ChunkResult {
        // Admission: resolve every job, grouping the live ones.
        type GroupKey = (usize, String, bool);
        enum Slot {
            Live(GroupKey),
            FormationExpired(u64),
            Rejected(String),
            /// A raw-source job answered by the static analyzer.
            Static(String),
            /// A raw-source job rejected by error-severity diagnostics.
            LintRejected(String),
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(chunk.len());
        let mut groups: BTreeMap<GroupKey, HardwareSpec> = BTreeMap::new();
        let mut live = 0u64;
        for q in chunk {
            if let Some(d) = q.deadline_ms {
                if dispatch_ms > q.arrival_ms + d {
                    slots.push(Slot::FormationExpired(d));
                    continue;
                }
            }
            if let Some(src) = &q.job.src {
                slots.push(match self.static_answer(&q.job, src) {
                    Ok(line) => Slot::Static(line),
                    Err(e @ PceError::Lint { .. }) => Slot::LintRejected(format!(
                        "err id={} kind={} error=\"{}\"",
                        q.job.id,
                        e.kind(),
                        one_line(&e)
                    )),
                    Err(e) => Slot::Rejected(format!(
                        "err id={} kind={} error=\"{}\"",
                        q.job.id,
                        e.kind(),
                        one_line(&e)
                    )),
                });
                continue;
            }
            match self.resolve(&q.job) {
                Ok((prog, spec)) => {
                    let key = (
                        prog,
                        spec.name.clone(),
                        matches!(q.job.style, ShotStyle::FewShot),
                    );
                    groups.entry(key.clone()).or_insert(spec);
                    slots.push(Slot::Live(key));
                    live += 1;
                }
                Err(e) => slots.push(Slot::Rejected(format!(
                    "err id={} kind={} error=\"{}\"",
                    q.job.id,
                    e.kind(),
                    one_line(&e)
                ))),
            }
        }
        let t_end = dispatch_ms + cost_ms * live;

        // Shared phase: one profile + ground truth + rendered prompt per
        // group, in parallel across groups.
        let group_list: Vec<(GroupKey, HardwareSpec)> = groups.into_iter().collect();
        let prepared: BTreeMap<GroupKey, GroupPrep> = group_list
            .par_iter()
            .map(|(key, spec)| {
                let p = &self.programs[key.0];
                let profile = Profiler::new(spec.clone())
                    .with_caches(self.caches.sim.clone())
                    .profile_shared(&p.ir, &p.launch);
                let truth = classify_joint(spec, &profile.counts).label;
                let style = if key.2 {
                    ShotStyle::FewShot
                } else {
                    ShotStyle::ZeroShot
                };
                let req = ClassifyRequest {
                    language: p.language.label().to_string(),
                    kernel_name: p.kernel_name.clone(),
                    hardware: spec.clone(),
                    geometry: p.launch.geometry_string(),
                    args: p.args.clone(),
                    source: p.source.clone(),
                };
                let prompt = render_classify_prompt(&req, style);
                self.caches.count_prompt_renders(1);
                (key.clone(), GroupPrep { prompt, truth })
            })
            .collect();

        // Per-job phase: completions fan out across the pool.
        let sampling = SamplingParams::default();
        let answered: Vec<FannedAnswer> = chunk
                .par_iter()
                .enumerate()
                .map(|(i, q)| {
                    let key = match &slots[i] {
                        Slot::Live(key) => key,
                        Slot::FormationExpired(d) => {
                            let line = format!(
                                "err id={} kind=timeout error=\"deadline {d} ms exceeded in queue (arrived {} ms, dispatched {dispatch_ms} ms)\"",
                                q.job.id, q.arrival_ms,
                            );
                            return (line, ResponseAccounting::new(), ServeOutcome::Expired, None);
                        }
                        Slot::Rejected(line) | Slot::Static(line) => {
                            return (
                                line.clone(),
                                ResponseAccounting::new(),
                                ServeOutcome::Completed,
                                None,
                            )
                        }
                        Slot::LintRejected(line) => {
                            return (
                                line.clone(),
                                ResponseAccounting::new(),
                                ServeOutcome::LintRejected,
                                None,
                            )
                        }
                    };
                    let prep = &prepared[key];
                    // Budget retry backoff to the remaining deadline so a
                    // retried job can never outlive it.
                    let budget = q
                        .deadline_ms
                        .map(|d| (q.arrival_ms + d).saturating_sub(dispatch_ms));
                    let policy = match budget {
                        Some(b) => self.policy.with_budget(b),
                        None => self.policy,
                    };
                    let out = self.engine.complete_with_retry(
                        &q.job.model,
                        &prep.prompt,
                        Some(sampling),
                        self.job_seed(&q.job),
                        &policy,
                    );
                    let success = out.accounting.valid + out.accounting.retried_valid > 0;
                    let signal = Some((q.job.model.clone(), success));
                    // Completion fan-out deadline checks: the retry loop
                    // ran out of backoff budget, or the chunk finished
                    // past this job's deadline.
                    let budget_timeout = matches!(
                        (&out.error, budget),
                        (Some(PceError::Timeout { ms }), Some(b)) if *ms == b
                    );
                    if let Some(d) = q.deadline_ms {
                        if budget_timeout || t_end > q.arrival_ms + d {
                            let line = format!(
                                "err id={} kind=timeout error=\"deadline {d} ms exceeded during completion\"",
                                q.job.id,
                            );
                            return (line, out.accounting, ServeOutcome::Expired, signal);
                        }
                    }
                    let prediction = match out.verdict {
                        Some(b) => b.answer_token(),
                        None => "invalid",
                    };
                    let correct = out.verdict == Some(prep.truth);
                    let line = format!(
                        "ok id={} kernel={} model={} prediction={prediction} truth={} correct={correct}",
                        q.job.id,
                        q.job.kernel,
                        q.job.model,
                        prep.truth.answer_token(),
                    );
                    (line, out.accounting, ServeOutcome::Completed, signal)
                })
                .collect();

        // Sequential ledger merge, in request order.
        let mut answers = Vec::with_capacity(answered.len());
        let mut map = self.ledgers.lock();
        for ((line, acc, outcome, breaker_signal), q) in answered.into_iter().zip(chunk) {
            if let Ok(map) = map.as_mut() {
                let l = map.entry(q.job.model.clone()).or_default();
                l.admitted += 1;
                match outcome {
                    ServeOutcome::Completed => l.completed += 1,
                    ServeOutcome::Expired => l.expired += 1,
                    ServeOutcome::LintRejected => l.lint += 1,
                }
                l.merge(&acc);
            }
            answers.push(Answer {
                line,
                breaker_signal,
            });
        }
        drop(map);
        ChunkResult { answers, t_end }
    }

    /// Dispatch the first `n` pending jobs at `max(vnow, busy_until)`,
    /// advancing the busy horizon, feeding the breaker, and writing
    /// response lines in request order.
    #[allow(clippy::too_many_arguments)]
    fn dispatch<W: Write>(
        &self,
        pending: &mut Vec<QueuedJob>,
        n: usize,
        vnow: u64,
        busy_until: &mut u64,
        cost_ms: u64,
        breaker: &mut CircuitBreaker,
        writer: &mut W,
    ) -> std::io::Result<()> {
        let t = vnow.max(*busy_until);
        let chunk: Vec<QueuedJob> = pending.drain(..n.min(pending.len())).collect();
        let result = self.run_chunk(&chunk, t, cost_ms);
        *busy_until = result.t_end;
        for answer in result.answers {
            if let Some((model, success)) = answer.breaker_signal {
                breaker.record(&model, success);
            }
            writeln!(writer, "{}", answer.line)?;
        }
        Ok(())
    }

    /// Flush the whole queue in batch-sized chunks (each advancing the
    /// virtual clock, so deadlines keep biting during the drain).
    #[allow(clippy::too_many_arguments)]
    fn drain_queue<W: Write>(
        &self,
        pending: &mut Vec<QueuedJob>,
        batch: usize,
        vnow: u64,
        busy_until: &mut u64,
        cost_ms: u64,
        breaker: &mut CircuitBreaker,
        writer: &mut W,
    ) -> std::io::Result<()> {
        while !pending.is_empty() {
            let n = batch.min(pending.len());
            self.dispatch(pending, n, vnow, busy_until, cost_ms, breaker, writer)?;
        }
        Ok(())
    }

    /// Drive the line protocol with the historical defaults (unbounded
    /// queue, no deadlines) at this batch size.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        writer: W,
        batch: usize,
    ) -> std::io::Result<()> {
        self.serve_session(reader, writer, &ServeConfig::classic(batch))
    }

    /// Drive the overload-safe line protocol: read commands from
    /// `reader`, write response lines to `writer`, enforcing the
    /// queue/deadline/breaker/drain model described at module level.
    ///
    /// Every job is answered exactly once. Completions come back in
    /// request order; jobs rejected at admission (shed, breaker-open,
    /// or already past deadline) are answered immediately, ahead of
    /// earlier jobs still waiting in the queue.
    pub fn serve_session<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
        config: &ServeConfig,
    ) -> std::io::Result<()> {
        let batch = config.batch.max(1);
        let depth = config.queue_depth.map(|d| d.max(1));
        // A bounded server dispatches as soon as a full batch *or* a full
        // queue is ready; an unbounded one keeps the historical
        // batch-only trigger.
        let trigger = depth.map(|d| d.min(batch)).unwrap_or(batch);
        let cost = config.cost_ms_per_job;
        let wire = self.wire_plan();
        let mut breaker = CircuitBreaker::new(
            config.breaker_threshold,
            config.breaker_probe_rate,
            self.study.seed,
        );
        let mut pending: Vec<QueuedJob> = Vec::new();
        let mut vnow: u64 = 0;
        let mut busy_until: u64 = 0;
        let mut draining = false;
        let mut disconnected = false;

        for line in reader.lines() {
            let line = line?;
            let arrived = line.trim();
            if arrived.is_empty() {
                continue;
            }
            // Wire chaos: tear, drop, or stall this line — drawn from the
            // line's own bytes, so the realized faults are independent of
            // batching and threading.
            let mut torn_at: Option<usize> = None;
            if let Some(w) = &wire {
                match w.draw(arrived) {
                    Some(WireFault::Torn { at }) => torn_at = Some(at),
                    Some(WireFault::Disconnect) => {
                        disconnected = true;
                        break;
                    }
                    Some(WireFault::Stall { ms }) => vnow += ms,
                    None => {}
                }
            }
            let effective = match torn_at {
                Some(at) => arrived[..at].trim_end(),
                None => arrived,
            };
            // A stall may have idled the server past its busy horizon:
            // give the queue a chance to move before admission decisions.
            if depth.is_some() {
                while vnow >= busy_until && pending.len() >= trigger {
                    self.dispatch(
                        &mut pending,
                        batch,
                        vnow,
                        &mut busy_until,
                        cost,
                        &mut breaker,
                        &mut writer,
                    )?;
                }
            }
            match Command::parse(effective) {
                Ok(Command::Predict(job)) => {
                    if draining {
                        writeln!(
                            writer,
                            "err id={} kind=overload shed=drain error=\"{}\"",
                            job.id,
                            one_line(PceError::overload("server is draining"))
                        )?;
                        self.account_shed(&job.model, false);
                        continue;
                    }
                    match breaker.admit(&job.model) {
                        BreakerDecision::Shed => {
                            writeln!(
                                writer,
                                "err id={} kind=overload shed=breaker error=\"{}\"",
                                job.id,
                                one_line(PceError::overload(format!(
                                    "circuit breaker open for model '{}'",
                                    job.model
                                )))
                            )?;
                            self.account_shed(&job.model, true);
                            continue;
                        }
                        BreakerDecision::Admit | BreakerDecision::Probe => {}
                    }
                    if let Some(d) = depth {
                        if pending.len() >= d {
                            // The idle case already dispatched above, so a
                            // full queue here means the server is busy.
                            writeln!(
                                writer,
                                "err id={} kind=overload shed=queue error=\"{}\"",
                                job.id,
                                one_line(PceError::overload(format!(
                                    "admission queue full (depth {d})"
                                )))
                            )?;
                            self.account_shed(&job.model, false);
                            continue;
                        }
                    }
                    let deadline_ms = job.deadline_ms.or(config.default_deadline_ms);
                    if let Some(d) = deadline_ms {
                        let earliest = vnow.max(busy_until);
                        if earliest > vnow + d {
                            writeln!(
                                writer,
                                "err id={} kind=timeout error=\"deadline {d} ms expired at admission (earliest dispatch {earliest} ms, arrived {vnow} ms)\"",
                                job.id,
                            )?;
                            self.account_admission_expiry(&job.model);
                            continue;
                        }
                    }
                    pending.push(QueuedJob {
                        job,
                        arrival_ms: vnow,
                        deadline_ms,
                    });
                    if depth.is_some() {
                        while vnow >= busy_until && pending.len() >= trigger {
                            self.dispatch(
                                &mut pending,
                                batch,
                                vnow,
                                &mut busy_until,
                                cost,
                                &mut breaker,
                                &mut writer,
                            )?;
                        }
                    } else if pending.len() >= batch {
                        self.dispatch(
                            &mut pending,
                            batch,
                            vnow,
                            &mut busy_until,
                            cost,
                            &mut breaker,
                            &mut writer,
                        )?;
                    }
                }
                Ok(Command::Stats) => {
                    self.drain_queue(
                        &mut pending,
                        batch,
                        vnow,
                        &mut busy_until,
                        cost,
                        &mut breaker,
                        &mut writer,
                    )?;
                    writeln!(writer, "{}", self.stats_line())?;
                }
                Ok(Command::Drain) => {
                    self.drain_queue(
                        &mut pending,
                        batch,
                        vnow,
                        &mut busy_until,
                        cost,
                        &mut breaker,
                        &mut writer,
                    )?;
                    draining = true;
                    writeln!(writer, "{}", self.stats_line())?;
                }
                Ok(Command::Quit) => {
                    self.drain_queue(
                        &mut pending,
                        batch,
                        vnow,
                        &mut busy_until,
                        cost,
                        &mut breaker,
                        &mut writer,
                    )?;
                    writer.flush()?;
                    return Ok(());
                }
                Err(e) => {
                    writeln!(
                        writer,
                        "err id=- kind={} error=\"{}\"",
                        e.kind(),
                        one_line(&e)
                    )?;
                }
            }
        }
        // EOF (or a chaos disconnect): stop admission, flush in-flight
        // work, and close the session with a final balanced-ledger stats
        // line.
        self.drain_queue(
            &mut pending,
            batch,
            vnow,
            &mut busy_until,
            cost,
            &mut breaker,
            &mut writer,
        )?;
        let _ = disconnected;
        writeln!(writer, "{}", self.stats_line())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let cmd = Command::parse(
            "predict id=j1 kernel=cuda-saxpy-0000 spec=rtx-3080 model=gpt-4o shots=zero",
        )
        .expect("valid line");
        match cmd {
            Command::Predict(job) => {
                assert_eq!(job.id, "j1");
                assert_eq!(job.kernel, "cuda-saxpy-0000");
                assert_eq!(job.style, ShotStyle::ZeroShot);
                assert_eq!(job.deadline_ms, None);
            }
            other => panic!("expected predict, got {other:?}"),
        }
        let cmd = Command::parse("predict id=j2 kernel=k spec=s model=m shots=few deadline_ms=40")
            .expect("valid line with deadline");
        match cmd {
            Command::Predict(job) => assert_eq!(job.deadline_ms, Some(40)),
            other => panic!("expected predict, got {other:?}"),
        }
        assert_eq!(Command::parse("stats"), Ok(Command::Stats));
        assert_eq!(Command::parse("drain"), Ok(Command::Drain));
        assert_eq!(Command::parse(" quit "), Ok(Command::Quit));
    }

    #[test]
    fn src_round_trips_through_percent_encoding() {
        let src = "__global__ void k(float* x) {\n  x[threadIdx.x] *= 2.0f; // \"quoted\"\n}\n";
        let enc = encode_src(src);
        assert!(!enc.contains(char::is_whitespace), "{enc}");
        assert!(!enc.contains('='), "{enc}");
        assert_eq!(decode_src(&enc).expect("decodes"), src);
        // Malformed escapes are parse errors, not panics.
        assert!(decode_src("abc%2").is_err());
        assert!(decode_src("abc%zz").is_err());
        assert!(decode_src("%FF%FE").is_err(), "invalid UTF-8 rejected");
    }

    #[test]
    fn parse_accepts_src_jobs_and_rejects_mixed_fields() {
        let enc = encode_src("__global__ void k() {}");
        let cmd = Command::parse(&format!("predict id=s1 src={enc} spec=rtx-3080"))
            .expect("valid src line");
        match cmd {
            Command::Predict(job) => {
                assert_eq!(job.id, "s1");
                assert_eq!(job.kernel, "-");
                assert_eq!(job.model, STATIC_MODEL);
                assert_eq!(job.style, ShotStyle::ZeroShot);
                assert_eq!(job.src.as_deref(), Some("__global__ void k() {}"));
            }
            other => panic!("expected predict, got {other:?}"),
        }
        for bad in [
            format!("predict id=s1 src={enc} spec=s kernel=k"),
            format!("predict id=s1 src={enc} spec=s model=m"),
            format!("predict id=s1 src={enc} spec=s shots=zero"),
            format!("predict id=s1 src={enc}"),
            "predict id=s1 src=%2 spec=s".to_string(),
        ] {
            let err = Command::parse(&bad).expect_err(&format!("accepted: {bad}"));
            assert_eq!(err.kind(), "parse", "{bad}");
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "explode",
            "predict id=j1",
            "predict id=j1 kernel=k spec=s model=m shots=maybe",
            "predict id=j1 kernel=k spec=s model=m shots=zero bogus=1",
            "predict id=j1 id=j2 kernel=k spec=s model=m shots=zero",
            "predict id=j1 kernel=k spec=s model=m shots=zero deadline_ms=soon",
            "predict id=j1 kernel=k spec=s model=m shots=zero deadline_ms=-5",
            "predict novalue",
            "stats now",
            "drain --force",
            "quit 0",
        ] {
            let err = Command::parse(bad).expect_err(&format!("accepted: {bad}"));
            assert_eq!(err.kind(), "parse", "{bad}");
            assert!(!err.to_string().contains('\n'), "{bad}");
        }
    }

    #[test]
    fn breaker_trips_probes_and_recovers_deterministically() {
        let mut b = CircuitBreaker::new(3, 0.5, 42);
        assert!(!b.is_open("o1"));
        for _ in 0..2 {
            b.record("o1", false);
        }
        assert!(!b.is_open("o1"), "below threshold");
        b.record("o1", false);
        assert!(b.is_open("o1"), "third consecutive failure trips");
        // Other models are unaffected.
        assert_eq!(b.admit("gpt-4o"), BreakerDecision::Admit);
        // Open-breaker decisions are a deterministic seeded stream with
        // both probes and sheds present.
        let decisions: Vec<BreakerDecision> = (0..32).map(|_| b.admit("o1")).collect();
        let mut again = CircuitBreaker::new(3, 0.5, 42);
        for _ in 0..3 {
            again.record("o1", false);
        }
        let replay: Vec<BreakerDecision> = (0..32).map(|_| again.admit("o1")).collect();
        assert_eq!(decisions, replay);
        assert!(decisions.contains(&BreakerDecision::Probe));
        assert!(decisions.contains(&BreakerDecision::Shed));
        // A successful probe closes the breaker; an intervening failure
        // would have kept it open.
        b.record("o1", true);
        assert!(!b.is_open("o1"));
        assert_eq!(b.admit("o1"), BreakerDecision::Admit);
        // It takes `threshold` fresh consecutive failures to re-trip.
        b.record("o1", false);
        assert!(!b.is_open("o1"));
    }

    #[test]
    fn breaker_success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(2, 0.25, 7);
        b.record("m", false);
        b.record("m", true);
        b.record("m", false);
        assert!(!b.is_open("m"), "non-consecutive failures never trip");
        b.record("m", false);
        assert!(b.is_open("m"));
    }
}
