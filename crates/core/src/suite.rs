//! The cross-hardware study suite: one shared data build, per-spec
//! Table-1 evaluations, and the label-flip analysis.
//!
//! The paper evaluates everything on a single RTX 3080, but its roofline
//! framing is hardware-parametric: the same kernel flips between compute-
//! and bandwidth-bound as the peak-FLOPs/bandwidth ratio changes. This
//! module runs the full experiment matrix — hardware spec × model zoo ×
//! RQ1/RQ2/RQ3 — across an arbitrary list of [`HardwareSpec`]s:
//!
//! * the hardware-*independent* work (corpus generation, tokenizer
//!   training, per-program token counts, the RQ1 random-roofline runs) is
//!   done **once** in a [`SharedBuild`] and reused by every spec,
//! * the hardware-*dependent* work (profiling, labeling, balancing,
//!   RQ2/RQ3 classification) runs per spec, with rayon fanning out over
//!   both the spec list and the model zoo,
//! * a [`FlipAnalysis`] reports which kernels change ground-truth
//!   boundedness across specs and how zero-shot model accuracy tracks
//!   those flips.
//!
//! Everything is deterministic: results are collected in input order and
//! costs derive from integer token totals, so the suite renders
//! byte-identically under any `RAYON_NUM_THREADS`.

use std::collections::BTreeSet;
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_dataset::{run_pipeline_cached, tokenize_corpus, PipelineReport, TokenizedCorpus};
use pce_kernels::{build_corpus, Program};
use pce_roofline::{Boundedness, HardwareSpec};

use crate::caches::{CacheReport, SuiteCaches};
use crate::study::Study;
use crate::table1::{build_table1_from_bank_cached, Rq1Bank, Table1};

/// Cross-hardware suite configuration: one base study re-targeted at a
/// list of hardware specs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Suite {
    /// The base study (corpus, pipeline, RQ1 scale, seeds). Its hardware
    /// is replaced per spec via [`Study::with_hardware`].
    pub base: Study,
    /// The hardware matrix rows. The first spec is the flip-analysis
    /// reference.
    pub specs: Vec<HardwareSpec>,
}

impl Default for Suite {
    /// Paper-scale base study across the full preset catalog.
    fn default() -> Self {
        Suite {
            base: Study::default(),
            specs: HardwareSpec::presets(),
        }
    }
}

impl Suite {
    /// Reduced-scale suite across the full preset catalog (CI-friendly).
    pub fn smoke() -> Self {
        Suite {
            base: Study::smoke(),
            specs: HardwareSpec::presets(),
        }
    }

    /// Reduced-scale suite over an explicit spec list (cheap tests).
    pub fn smoke_with_specs(specs: Vec<HardwareSpec>) -> Self {
        Suite {
            base: Study::smoke(),
            specs,
        }
    }
}

/// The hardware-independent half of the suite build, done once and shared
/// by every spec: the corpus, its tokenization, and the RQ1 bank.
#[derive(Debug, Clone)]
pub struct SharedBuild {
    /// The generated corpus (shared verbatim by every spec).
    pub corpus: Vec<Program>,
    /// One tokenizer training + token count pass over the corpus.
    pub tokenized: TokenizedCorpus,
    /// RQ1 outcomes per model (RQ1 prompts embed their own rooflines, so
    /// they are hardware-independent too).
    pub rq1: Rq1Bank,
}

impl SharedBuild {
    /// Build the shared half from the suite's base study.
    pub fn build(suite: &Suite) -> SharedBuild {
        SharedBuild::build_cached(suite, &SuiteCaches::new())
    }

    /// [`SharedBuild::build`] against a shared cache bundle (the RQ1 bank
    /// routes its prompt parsing through the bundle's caches).
    pub fn build_cached(suite: &Suite, caches: &SuiteCaches) -> SharedBuild {
        SharedBuild::build_instrumented(suite, caches, &mut |_, _| {})
    }

    /// The one shared-build implementation: both the plain and the timed
    /// suite runners go through here, so the stage sequence cannot
    /// silently diverge between them. `stage` observes each completed
    /// stage (name, start instant).
    fn build_instrumented(
        suite: &Suite,
        caches: &SuiteCaches,
        stage: &mut dyn FnMut(&'static str, Instant),
    ) -> SharedBuild {
        let t = Instant::now();
        let corpus = build_corpus(&suite.base.corpus);
        stage("corpus", t);

        let t = Instant::now();
        let tokenized = tokenize_corpus(&corpus, &suite.base.pipeline);
        stage("tokenize", t);

        let t = Instant::now();
        let rq1 = Rq1Bank::build_cached(&suite.base, &caches.llm);
        stage("rq1-bank", t);

        SharedBuild {
            corpus,
            tokenized,
            rq1,
        }
    }
}

/// Everything the suite produces for one hardware spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecOutcome {
    /// The hardware this cell ran on.
    pub spec: HardwareSpec,
    /// The spec's Table 1 (all models × RQ1/RQ2/RQ3).
    pub table: Table1,
    /// The spec's dataset funnel (labels, pruning, balancing).
    pub funnel: PipelineReport,
    /// Sample ids of the spec's balanced dataset, in dataset order.
    pub dataset_ids: Vec<String>,
    /// Zero-shot per-sample correctness per model (zoo order), aligned
    /// with `dataset_ids`.
    pub zero_shot_correct: Vec<(String, Vec<bool>)>,
}

/// Ground-truth labels for one corpus kernel across every spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelLabels {
    /// Corpus program id.
    pub id: String,
    /// Kernel family.
    pub family: String,
    /// The kernel's label under each spec, in suite spec order.
    pub labels: Vec<Boundedness>,
}

impl KernelLabels {
    /// Does the ground truth differ between any two specs?
    pub fn flips(&self) -> bool {
        self.labels.windows(2).any(|w| w[0] != w[1])
    }
}

/// Which kernels change ground-truth boundedness across the hardware
/// matrix, and how model accuracy tracks those flips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlipAnalysis {
    /// Spec names, in suite order (index 0 is the reference).
    pub spec_names: Vec<String>,
    /// Per-kernel label vectors, in corpus order.
    pub kernels: Vec<KernelLabels>,
    /// Number of kernels whose label differs between at least two specs.
    pub flipping: usize,
    /// Per spec: kernels labeled differently than under the reference
    /// (first) spec. Entry 0 is always zero.
    pub flips_vs_reference: Vec<usize>,
    /// Mean zero-shot accuracy (×100, pooled over all models × specs) on
    /// dataset samples whose kernel flips across specs. `None` when no
    /// evaluated sample flips.
    pub accuracy_on_flipping: Option<f64>,
    /// Same, on samples whose kernel keeps one label everywhere.
    pub accuracy_on_stable: Option<f64>,
}

/// The full suite result: per-spec outcomes plus the flip analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteOutcome {
    /// One outcome per hardware spec, in suite order.
    pub specs: Vec<SpecOutcome>,
    /// The cross-spec label-flip analysis.
    pub flips: FlipAnalysis,
}

/// Run the whole suite: shared build, then every (hardware, model) cell.
pub fn run_suite(suite: &Suite) -> SuiteOutcome {
    run_suite_cached(suite, &SuiteCaches::new())
}

/// Run the whole suite against a shared cache bundle. Reusing one bundle
/// across runs also reuses per-(kernel, spec) profiles and analyses;
/// warm and cold bundles produce byte-identical outcomes.
pub fn run_suite_cached(suite: &Suite, caches: &SuiteCaches) -> SuiteOutcome {
    let shared = SharedBuild::build_cached(suite, caches);
    run_suite_shared_cached(suite, &shared, caches)
}

/// Run the suite against an existing [`SharedBuild`] (exposed so tests
/// can assert exactly what is shared).
///
/// # Panics
/// Panics when `suite.specs` is empty.
pub fn run_suite_shared(suite: &Suite, shared: &SharedBuild) -> SuiteOutcome {
    run_suite_shared_cached(suite, shared, &SuiteCaches::new())
}

/// [`run_suite_shared`] against a shared cache bundle.
///
/// # Panics
/// Panics when `suite.specs` is empty.
pub fn run_suite_shared_cached(
    suite: &Suite,
    shared: &SharedBuild,
    caches: &SuiteCaches,
) -> SuiteOutcome {
    assert!(!suite.specs.is_empty(), "suite needs at least one spec");
    let specs = run_specs(suite, shared, caches);
    let flips = analyze_flips(&shared.corpus, &specs);
    SuiteOutcome { specs, flips }
}

/// Evaluate every hardware spec (parallel) against the shared build.
fn run_specs(suite: &Suite, shared: &SharedBuild, caches: &SuiteCaches) -> Vec<SpecOutcome> {
    suite
        .specs
        .par_iter()
        .map(|hw| {
            let study = suite.base.with_hardware(hw.clone());
            // Re-profile and relabel the shared corpus under this spec;
            // no per-spec corpus clone or tokenizer retrain, and the
            // cache bundle shares body summaries across the whole matrix.
            let (dataset, _split, funnel) = run_pipeline_cached(
                &shared.corpus,
                &shared.tokenized,
                &study.pipeline,
                &caches.sim,
            );
            let detail =
                build_table1_from_bank_cached(&study, &dataset.samples, &shared.rq1, caches);
            SpecOutcome {
                spec: hw.clone(),
                dataset_ids: dataset.samples.iter().map(|s| s.id.clone()).collect(),
                zero_shot_correct: detail.zero_shot_correct,
                table: detail.table,
                funnel,
            }
        })
        .collect()
}

/// Wall-clock of one suite stage, as serialized into `BENCH_suite.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`corpus`, `tokenize`, `rq1-bank`, `spec-eval`,
    /// `flip-analysis`).
    pub stage: String,
    /// Wall-clock milliseconds spent in the stage.
    pub wall_ms: f64,
}

/// The suite's performance report: per-stage wall-clock plus the cache
/// bundle's hit/miss counters. Written as `BENCH_suite.json` by the
/// `suite` bin under `--timings`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteBench {
    /// Hardware specs evaluated.
    pub specs: usize,
    /// Models per spec (the Table-1 zoo).
    pub models_per_spec: usize,
    /// Per-stage wall-clock, in execution order.
    pub stages: Vec<StageTiming>,
    /// End-to-end wall-clock milliseconds (stages plus glue).
    pub total_ms: f64,
    /// Cache effectiveness across every layer.
    pub caches: CacheReport,
}

impl SuiteBench {
    /// Render a compact human-readable summary (one line per stage, then
    /// per cache).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "suite bench: {} specs x {} models, total {:.1} ms\n",
            self.specs, self.models_per_spec, self.total_ms
        ));
        for s in &self.stages {
            out.push_str(&format!("  stage {:<14} {:>10.1} ms\n", s.stage, s.wall_ms));
        }
        let c = &self.caches;
        for (name, counters) in [
            ("summary", c.summary),
            ("profile", c.profile),
            ("analysis", c.analysis),
            ("classify-parse", c.classify_parse),
            ("rq1-parse", c.rq1_parse),
        ] {
            out.push_str(&format!(
                "  cache {:<15} {:>8} hits / {:>7} lookups ({:.1}% hit)\n",
                name,
                counters.hits,
                counters.total(),
                100.0 * counters.hit_rate()
            ));
        }
        out.push_str(&format!("  prompt renders    {:>8}\n", c.prompt_renders));
        out
    }
}

/// Run the whole suite with stage-level timing instrumentation.
///
/// The outcome is byte-identical to [`run_suite_cached`] on the same
/// bundle; the accompanying [`SuiteBench`] carries per-stage wall-clock
/// and the bundle's cache counters.
pub fn run_suite_timed(suite: &Suite, caches: &SuiteCaches) -> (SuiteOutcome, SuiteBench) {
    assert!(!suite.specs.is_empty(), "suite needs at least one spec");
    let t_total = Instant::now();
    let mut stages = Vec::new();
    let mut stage = |name: &str, t: Instant| {
        stages.push(StageTiming {
            stage: name.to_string(),
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        });
    };

    // Exactly the untimed pipeline, observed: the shared build and the
    // spec evaluation are the same functions run_suite_cached composes.
    let shared = SharedBuild::build_instrumented(suite, caches, &mut stage);

    let t = Instant::now();
    let specs = run_specs(suite, &shared, caches);
    stage("spec-eval", t);

    let t = Instant::now();
    let flips = analyze_flips(&shared.corpus, &specs);
    stage("flip-analysis", t);

    let bench = SuiteBench {
        specs: suite.specs.len(),
        models_per_spec: pce_llm::model_zoo().len(),
        stages,
        total_ms: t_total.elapsed().as_secs_f64() * 1e3,
        caches: caches.report(),
    };
    (SuiteOutcome { specs, flips }, bench)
}

/// Cross-spec label comparison plus flip-tracking accuracy.
fn analyze_flips(corpus: &[Program], specs: &[SpecOutcome]) -> FlipAnalysis {
    let kernels: Vec<KernelLabels> = corpus
        .iter()
        .enumerate()
        .map(|(i, p)| KernelLabels {
            id: p.id.clone(),
            family: p.family.clone(),
            labels: specs.iter().map(|s| s.funnel.corpus_labels[i]).collect(),
        })
        .collect();
    let flipping = kernels.iter().filter(|k| k.flips()).count();
    let flips_vs_reference = (0..specs.len())
        .map(|j| {
            kernels
                .iter()
                .filter(|k| k.labels[j] != k.labels[0])
                .count()
        })
        .collect();

    // Pool zero-shot correctness over every (model, spec, sample) cell,
    // split by whether the sample's kernel flips anywhere in the matrix.
    let flippy: BTreeSet<&str> = kernels
        .iter()
        .filter(|k| k.flips())
        .map(|k| k.id.as_str())
        .collect();
    let (mut flip_hits, mut flip_n, mut stable_hits, mut stable_n) = (0u64, 0u64, 0u64, 0u64);
    for spec in specs {
        for (_, correct) in &spec.zero_shot_correct {
            for (id, &ok) in spec.dataset_ids.iter().zip(correct) {
                if flippy.contains(id.as_str()) {
                    flip_n += 1;
                    flip_hits += ok as u64;
                } else {
                    stable_n += 1;
                    stable_hits += ok as u64;
                }
            }
        }
    }
    let pct = |hits: u64, n: u64| (n > 0).then(|| 100.0 * hits as f64 / n as f64);
    FlipAnalysis {
        spec_names: specs.iter().map(|s| s.spec.name.clone()).collect(),
        kernels,
        flipping,
        flips_vs_reference,
        accuracy_on_flipping: pct(flip_hits, flip_n),
        accuracy_on_stable: pct(stable_hits, stable_n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Suite {
        let mut suite =
            Suite::smoke_with_specs(vec![HardwareSpec::rtx_3080(), HardwareSpec::mi250x()]);
        // Shrink further: the structure, not the scale, is under test.
        suite.base.corpus.cuda_programs = 90;
        suite.base.corpus.omp_programs = 72;
        suite.base.rq1_rooflines = 16;
        suite.base.pipeline.per_combo_cap = 10;
        suite
    }

    #[test]
    fn suite_produces_one_outcome_per_spec_in_order() {
        let suite = tiny_suite();
        let outcome = run_suite(&suite);
        assert_eq!(outcome.specs.len(), suite.specs.len());
        for (hw, out) in suite.specs.iter().zip(&outcome.specs) {
            assert_eq!(out.spec.name, hw.name);
            assert_eq!(out.table.rows.len(), 9);
            assert!(out.table.total_cost > 0.0);
            assert_eq!(out.dataset_ids.len(), out.funnel.final_size);
        }
        assert_eq!(outcome.flips.spec_names.len(), suite.specs.len());
        assert_eq!(outcome.flips.flips_vs_reference[0], 0);
    }

    #[test]
    fn consumer_vs_hpc_silicon_flips_dp_kernels() {
        // The 3080's 1/64-rate DP pipes put its DP ridge at ~0.6 flop/B;
        // the MI250X's full-rate DP over 3.2 TB/s sits at ~14.6. Any
        // DP-heavy kernel in between must flip.
        let outcome = run_suite(&tiny_suite());
        assert!(
            outcome.flips.flipping > 0,
            "no kernel flipped between RTX 3080 and MI250X"
        );
        let n = outcome.flips.kernels.len();
        assert!(outcome.flips.flipping < n, "every kernel flipped");
    }

    #[test]
    fn flip_analysis_counts_are_consistent() {
        let outcome = run_suite(&tiny_suite());
        let recount = outcome.flips.kernels.iter().filter(|k| k.flips()).count();
        assert_eq!(outcome.flips.flipping, recount);
        for k in &outcome.flips.kernels {
            assert_eq!(k.labels.len(), outcome.flips.spec_names.len());
        }
        // Pooled accuracies are percentages when present.
        for acc in [
            outcome.flips.accuracy_on_flipping,
            outcome.flips.accuracy_on_stable,
        ]
        .into_iter()
        .flatten()
        {
            assert!((0.0..=100.0).contains(&acc), "{acc}");
        }
    }

    #[test]
    fn warm_and_cold_bundles_produce_identical_outcomes() {
        let suite = tiny_suite();
        let cold = run_suite(&suite);
        let caches = SuiteCaches::new();
        let warm_first = run_suite_cached(&suite, &caches);
        let warm_second = run_suite_cached(&suite, &caches);
        assert_eq!(cold, warm_first, "cold vs first cached run");
        assert_eq!(cold, warm_second, "cold vs fully-warm rerun");
        // The rerun must have been served from the profile memo and the
        // analysis cache, not recomputed.
        let report = caches.report();
        assert!(report.profile.hits > 0, "{report:?}");
        assert!(report.analysis.hits > 0, "{report:?}");
        assert!(report.summary.hits > 0, "{report:?}");
    }

    #[test]
    fn timed_run_matches_untimed_and_reports_stages() {
        let suite = tiny_suite();
        let caches = SuiteCaches::new();
        let (outcome, bench) = run_suite_timed(&suite, &caches);
        assert_eq!(outcome, run_suite(&suite));
        assert_eq!(bench.specs, suite.specs.len());
        assert_eq!(bench.models_per_spec, 9);
        let names: Vec<&str> = bench.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            [
                "corpus",
                "tokenize",
                "rq1-bank",
                "spec-eval",
                "flip-analysis"
            ]
        );
        assert!(bench.stages.iter().all(|s| s.wall_ms >= 0.0));
        assert!(bench.total_ms >= bench.stages.iter().map(|s| s.wall_ms).sum::<f64>() * 0.99);
        // Both shot styles × both specs rendered once per sample.
        let expected: usize = outcome.specs.iter().map(|s| 2 * s.dataset_ids.len()).sum();
        assert_eq!(bench.caches.prompt_renders as usize, expected);
        let summary = bench.summary();
        for needle in ["spec-eval", "analysis", "prompt renders"] {
            assert!(summary.contains(needle), "missing {needle}:\n{summary}");
        }
    }

    #[test]
    fn default_suite_spans_the_full_catalog() {
        let suite = Suite::default();
        assert!(suite.specs.len() >= 6, "suite must span ≥ 6 presets");
        assert_eq!(Suite::smoke().specs.len(), suite.specs.len());
    }
}
