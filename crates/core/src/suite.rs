//! The cross-hardware study suite: one shared data build, per-cell
//! Table-1 evaluations over a (GPU spec × CPU spec) matrix, and the
//! language-split label-flip analysis.
//!
//! The paper evaluates everything on a single RTX 3080, but its roofline
//! framing is hardware-parametric: the same kernel flips between compute-
//! and bandwidth-bound as the peak-FLOPs/bandwidth ratio changes — and
//! half the corpus is OpenMP code whose ground truth belongs to a *CPU*
//! roofline, not a GPU's. This module runs the full experiment matrix —
//! (GPU spec × CPU spec) × model zoo × RQ1/RQ2/RQ3:
//!
//! * the hardware-*independent* work (corpus generation, tokenizer
//!   training, per-program token counts, the RQ1 random-roofline runs) is
//!   done **once** in a [`SharedBuild`] and reused by every cell,
//! * the hardware-*dependent* work (profiling, labeling, balancing,
//!   RQ2/RQ3 classification) runs per (GPU, CPU) cell, with each cell's
//!   pipeline routing CUDA kernels to the GPU spec and OMP kernels to the
//!   CPU spec; rayon fans out over cells and the model zoo,
//! * a [`FlipAnalysis`] reports — **per language** — which kernels change
//!   ground-truth boundedness along their own hardware axis (CUDA across
//!   GPU specs, OMP across CPU specs) and how zero-shot model accuracy
//!   tracks those flips.
//!
//! Everything is deterministic: results are collected in input order and
//! costs derive from integer token totals, so the suite renders
//! byte-identically under any `RAYON_NUM_THREADS`.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_dataset::{run_pipeline_cached, tokenize_corpus, PipelineReport, TokenizedCorpus};
use pce_fault::{PceError, ResponseAccounting};
use pce_kernels::{build_corpus, Language, Program};
use pce_roofline::{Boundedness, HardwareSpec, SpecClass, SpecPair};

use crate::caches::{CacheReport, SuiteCaches};
use crate::study::Study;
use crate::table1::{build_table1_from_bank_cached, Rq1Bank, Table1};

/// Cross-hardware suite configuration: one base study re-targeted at
/// every cell of a (GPU spec × CPU spec) matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Suite {
    /// The base study (corpus, pipeline, RQ1 scale, seeds). Its spec pair
    /// is replaced per cell via [`Study::with_specs`].
    pub base: Study,
    /// The GPU axis (labels the CUDA corpus half). The first spec is the
    /// CUDA flip-analysis reference.
    pub specs: Vec<HardwareSpec>,
    /// The CPU axis (labels the OMP corpus half). The first spec is the
    /// OMP flip-analysis reference.
    pub cpu_specs: Vec<HardwareSpec>,
}

impl Default for Suite {
    /// Paper-scale base study across the full preset catalog: every GPU
    /// preset crossed with every CPU preset.
    fn default() -> Self {
        Suite {
            base: Study::default(),
            specs: HardwareSpec::gpu_presets(),
            cpu_specs: HardwareSpec::cpu_presets(),
        }
    }
}

impl Suite {
    /// Reduced-scale suite across the full preset catalog (CI-friendly).
    pub fn smoke() -> Self {
        Suite {
            base: Study::smoke(),
            ..Suite::default()
        }
    }

    /// Reduced-scale suite over an explicit GPU spec list with the
    /// paper-default CPU spec (cheap tests that only exercise the GPU
    /// axis; one cell per GPU spec).
    pub fn smoke_with_specs(specs: Vec<HardwareSpec>) -> Self {
        Suite::smoke_with_matrix(specs, vec![HardwareSpec::epyc_9654()])
    }

    /// Reduced-scale suite over an explicit (GPU × CPU) matrix.
    pub fn smoke_with_matrix(specs: Vec<HardwareSpec>, cpu_specs: Vec<HardwareSpec>) -> Self {
        Suite {
            base: Study::smoke(),
            specs,
            cpu_specs,
        }
    }

    /// The matrix cells in evaluation order: GPU-major, i.e. every CPU
    /// spec for the first GPU spec, then the second GPU spec, ...
    pub fn cells(&self) -> Vec<SpecPair> {
        self.specs
            .iter()
            .flat_map(|gpu| {
                self.cpu_specs.iter().map(move |cpu| SpecPair {
                    gpu: gpu.clone(),
                    cpu: cpu.clone(),
                })
            })
            .collect()
    }

    /// Validate the matrix: both axes non-empty, correct spec classes.
    ///
    /// Returns human-readable problems; empty when the suite is runnable.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.specs.is_empty() {
            problems.push("suite needs at least one GPU spec".to_string());
        }
        if self.cpu_specs.is_empty() {
            problems.push("suite needs at least one CPU spec".to_string());
        }
        for hw in &self.specs {
            if hw.class != SpecClass::Gpu {
                problems.push(format!("'{}' on the GPU axis is a {}", hw.name, hw.class));
            }
        }
        for hw in &self.cpu_specs {
            if hw.class != SpecClass::Cpu {
                problems.push(format!("'{}' on the CPU axis is a {}", hw.name, hw.class));
            }
        }
        problems
    }
}

/// The hardware-independent half of the suite build, done once and shared
/// by every cell: the corpus, its tokenization, and the RQ1 bank.
#[derive(Debug, Clone)]
pub struct SharedBuild {
    /// The generated corpus (shared verbatim by every cell).
    pub corpus: Vec<Program>,
    /// One tokenizer training + token count pass over the corpus.
    pub tokenized: TokenizedCorpus,
    /// RQ1 outcomes per model (RQ1 prompts embed their own rooflines, so
    /// they are hardware-independent too).
    pub rq1: Rq1Bank,
}

impl SharedBuild {
    /// Build the shared half from the suite's base study. Fails only when
    /// corpus generation does.
    pub fn build(suite: &Suite) -> Result<SharedBuild, PceError> {
        SharedBuild::build_cached(suite, &SuiteCaches::new())
    }

    /// [`SharedBuild::build`] against a shared cache bundle (the RQ1 bank
    /// routes its prompt parsing through the bundle's caches).
    pub fn build_cached(suite: &Suite, caches: &SuiteCaches) -> Result<SharedBuild, PceError> {
        SharedBuild::build_instrumented(suite, caches, &mut |_, _| {})
    }

    /// The one shared-build implementation: both the plain and the timed
    /// suite runners go through here, so the stage sequence cannot
    /// silently diverge between them. `stage` observes each completed
    /// stage (name, start instant).
    fn build_instrumented(
        suite: &Suite,
        caches: &SuiteCaches,
        stage: &mut dyn FnMut(&'static str, Instant),
    ) -> Result<SharedBuild, PceError> {
        let t = Instant::now();
        let corpus = build_corpus(&suite.base.corpus)?;
        stage("corpus", t);

        let t = Instant::now();
        let tokenized = tokenize_corpus(&corpus, &suite.base.pipeline);
        stage("tokenize", t);

        let t = Instant::now();
        let rq1 = Rq1Bank::build_cached(&suite.base, &caches.llm);
        stage("rq1-bank", t);

        Ok(SharedBuild {
            corpus,
            tokenized,
            rq1,
        })
    }
}

/// Everything the suite produces for one (GPU, CPU) matrix cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecOutcome {
    /// The GPU spec this cell ran on (labels the CUDA half).
    pub spec: HardwareSpec,
    /// The CPU spec this cell ran on (labels the OMP half).
    pub cpu_spec: HardwareSpec,
    /// The cell's Table 1 (all models × RQ1/RQ2/RQ3).
    pub table: Table1,
    /// The cell's dataset funnel (labels, pruning, balancing).
    pub funnel: PipelineReport,
    /// Sample ids of the cell's balanced dataset, in dataset order.
    pub dataset_ids: Vec<String>,
    /// Zero-shot per-sample correctness per model (zoo order), aligned
    /// with `dataset_ids`.
    pub zero_shot_correct: Vec<(String, Vec<bool>)>,
}

impl SpecOutcome {
    /// The cell's spec pair (rebuilt from the two stored specs).
    pub fn pair(&self) -> SpecPair {
        SpecPair {
            gpu: self.spec.clone(),
            cpu: self.cpu_spec.clone(),
        }
    }

    /// `"<gpu name> + <cpu name>"`, for report headings (delegates to
    /// [`SpecPair::label`] so the format lives in one place).
    pub fn pair_label(&self) -> String {
        self.pair().label()
    }
}

/// Ground-truth labels for one corpus kernel across its language's
/// hardware axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelLabels {
    /// Corpus program id.
    pub id: String,
    /// Kernel family.
    pub family: String,
    /// The kernel's label under each spec of its language's axis, in
    /// suite axis order (GPU specs for CUDA kernels, CPU specs for OMP).
    pub labels: Vec<Boundedness>,
}

impl KernelLabels {
    /// Does the ground truth differ between any two specs?
    pub fn flips(&self) -> bool {
        self.labels.windows(2).any(|w| w[0] != w[1])
    }
}

/// The flip analysis for one corpus language along its own hardware axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanguageFlips {
    /// The corpus language this section covers.
    pub language: Language,
    /// The machine class of this language's hardware axis.
    pub axis_class: SpecClass,
    /// Axis spec names, in suite order (index 0 is the reference).
    pub spec_names: Vec<String>,
    /// Per-kernel label vectors, in corpus order, restricted to this
    /// language's kernels.
    pub kernels: Vec<KernelLabels>,
    /// Number of kernels whose label differs between at least two axis
    /// specs.
    pub flipping: usize,
    /// Per axis spec: kernels labeled differently than under the
    /// reference (first) spec. Entry 0 is always zero.
    pub flips_vs_reference: Vec<usize>,
    /// Mean zero-shot accuracy (×100, pooled over all models × cells) on
    /// dataset samples of this language whose kernel flips along the
    /// axis. `None` when no evaluated sample flips.
    pub accuracy_on_flipping: Option<f64>,
    /// Same, on samples whose kernel keeps one label everywhere.
    pub accuracy_on_stable: Option<f64>,
}

/// Which kernels change ground-truth boundedness across the hardware
/// matrix — split by language, since each language sweeps its own axis —
/// and how model accuracy tracks those flips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlipAnalysis {
    /// One section per corpus language: CUDA (across the GPU axis) first,
    /// then OMP (across the CPU axis).
    pub by_language: Vec<LanguageFlips>,
    /// Total flipping kernels across both languages.
    pub flipping: usize,
}

impl FlipAnalysis {
    /// The section for one language, if present.
    pub fn language(&self, language: Language) -> Option<&LanguageFlips> {
        self.by_language.iter().find(|l| l.language == language)
    }

    /// Total corpus kernels covered by the analysis.
    pub fn total_kernels(&self) -> usize {
        self.by_language.iter().map(|l| l.kernels.len()).sum()
    }
}

/// One matrix cell's result: a completed Table-1 evaluation, or a
/// structured failure that leaves the rest of the matrix intact.
// A suite holds at most a few dozen cells, so the size gap between the
// completed and failed variants costs nothing in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell ran to completion.
    Completed(SpecOutcome),
    /// The cell could not produce a usable Table 1 — an invalid spec pair,
    /// or every response exhausted its retries. The error explains why;
    /// the rest of the matrix renders around it.
    Failed {
        /// The GPU spec of the failed cell.
        spec: HardwareSpec,
        /// The CPU spec of the failed cell.
        cpu_spec: HardwareSpec,
        /// What went wrong.
        error: PceError,
    },
}

impl CellOutcome {
    /// The completed outcome, if the cell succeeded.
    pub fn completed(&self) -> Option<&SpecOutcome> {
        match self {
            CellOutcome::Completed(out) => Some(out),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// The failure error, if the cell failed.
    pub fn error(&self) -> Option<&PceError> {
        match self {
            CellOutcome::Completed(_) => None,
            CellOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// The cell's (GPU, CPU) spec pair — available whether or not the
    /// cell completed, so catalogs can cover the whole matrix.
    pub fn specs(&self) -> (&HardwareSpec, &HardwareSpec) {
        match self {
            CellOutcome::Completed(out) => (&out.spec, &out.cpu_spec),
            CellOutcome::Failed { spec, cpu_spec, .. } => (spec, cpu_spec),
        }
    }

    /// `"<gpu name> + <cpu name>"`, matching [`SpecOutcome::pair_label`].
    pub fn pair_label(&self) -> String {
        match self {
            CellOutcome::Completed(out) => out.pair_label(),
            CellOutcome::Failed { spec, cpu_spec, .. } => SpecPair {
                gpu: spec.clone(),
                cpu: cpu_spec.clone(),
            }
            .label(),
        }
    }
}

/// The full suite result: per-cell outcomes plus the flip analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteOutcome {
    /// One outcome per (GPU, CPU) cell, in [`Suite::cells`] order
    /// (GPU-major). Failed cells stay in place so the matrix shape is
    /// preserved.
    pub cells: Vec<CellOutcome>,
    /// The cross-spec, language-split label-flip analysis (over the
    /// completed cells).
    pub flips: FlipAnalysis,
}

impl SuiteOutcome {
    /// The completed cells, in matrix order.
    pub fn completed(&self) -> Vec<&SpecOutcome> {
        self.cells
            .iter()
            .filter_map(CellOutcome::completed)
            .collect()
    }

    /// The failed cells as `(pair label, error)`, in matrix order.
    pub fn failures(&self) -> Vec<(String, &PceError)> {
        self.cells
            .iter()
            .filter_map(|c| c.error().map(|e| (c.pair_label(), e)))
            .collect()
    }

    /// The suite-wide response ledger: every completed cell's Table-1
    /// accounting merged.
    pub fn accounting(&self) -> ResponseAccounting {
        self.completed()
            .iter()
            .fold(ResponseAccounting::new(), |acc, out| {
                acc.merged(&out.table.accounting())
            })
    }
}

/// Run the whole suite: shared build, then every (GPU, CPU, model) cell.
///
/// Fails with [`PceError::Spec`] only when an axis is empty; any
/// *per-cell* problem (a misclassed spec, chaos exhausting every retry)
/// degrades that cell to [`CellOutcome::Failed`] instead.
pub fn run_suite(suite: &Suite) -> Result<SuiteOutcome, PceError> {
    run_suite_cached(suite, &SuiteCaches::new())
}

/// Run the whole suite against a shared cache bundle. Reusing one bundle
/// across runs also reuses per-(kernel, spec) profiles and analyses;
/// warm and cold bundles produce byte-identical outcomes.
pub fn run_suite_cached(suite: &Suite, caches: &SuiteCaches) -> Result<SuiteOutcome, PceError> {
    let shared = SharedBuild::build_cached(suite, caches)?;
    run_suite_shared_cached(suite, &shared, caches)
}

/// Run the suite against an existing [`SharedBuild`] (exposed so tests
/// can assert exactly what is shared).
pub fn run_suite_shared(suite: &Suite, shared: &SharedBuild) -> Result<SuiteOutcome, PceError> {
    run_suite_shared_cached(suite, shared, &SuiteCaches::new())
}

/// [`run_suite_shared`] against a shared cache bundle.
pub fn run_suite_shared_cached(
    suite: &Suite,
    shared: &SharedBuild,
    caches: &SuiteCaches,
) -> Result<SuiteOutcome, PceError> {
    validate_axes(suite)?;
    let cells = run_specs(suite, shared, caches);
    let flips = analyze_flips(suite, &shared.corpus, &cells);
    Ok(SuiteOutcome { cells, flips })
}

/// The only suite-fatal configuration problem: an empty axis leaves no
/// cells to evaluate at all.
fn validate_axes(suite: &Suite) -> Result<(), PceError> {
    if suite.specs.is_empty() {
        return Err(PceError::spec("suite needs at least one GPU spec"));
    }
    if suite.cpu_specs.is_empty() {
        return Err(PceError::spec("suite needs at least one CPU spec"));
    }
    Ok(())
}

/// Per-cell spec validation: each half of the pair must sit on the right
/// machine-class axis.
fn validate_pair(pair: &SpecPair) -> Result<(), PceError> {
    if pair.gpu.class != SpecClass::Gpu {
        return Err(PceError::spec(format!(
            "'{}' on the GPU axis is a {}",
            pair.gpu.name, pair.gpu.class
        )));
    }
    if pair.cpu.class != SpecClass::Cpu {
        return Err(PceError::spec(format!(
            "'{}' on the CPU axis is a {}",
            pair.cpu.name, pair.cpu.class
        )));
    }
    Ok(())
}

/// Evaluate every matrix cell (parallel) against the shared build,
/// degrading per-cell failures to [`CellOutcome::Failed`].
fn run_specs(suite: &Suite, shared: &SharedBuild, caches: &SuiteCaches) -> Vec<CellOutcome> {
    suite
        .cells()
        .par_iter()
        .map(|pair| {
            if let Err(error) = validate_pair(pair) {
                return CellOutcome::Failed {
                    spec: pair.gpu.clone(),
                    cpu_spec: pair.cpu.clone(),
                    error,
                };
            }
            let study = suite.base.with_specs(pair.clone());
            // Re-profile and relabel the shared corpus under this cell's
            // language-routed spec pair; no per-cell corpus clone or
            // tokenizer retrain, and the cache bundle shares body
            // summaries across the whole matrix. Profiles memoize per
            // (kernel, routed spec), so a GPU row's CUDA half and a CPU
            // column's OMP half are each profiled once across the matrix.
            let (dataset, _split, funnel) = run_pipeline_cached(
                &shared.corpus,
                &shared.tokenized,
                &study.pipeline,
                &caches.sim,
            );
            let detail =
                build_table1_from_bank_cached(&study, &dataset.samples, &shared.rq1, caches);
            // A cell whose every response exhausted retries has no signal
            // left to tabulate: degrade it instead of reporting a table
            // of all-invalid confusion matrices as if it were data.
            let acc = detail.table.accounting();
            if acc.total() > 0 && acc.valid + acc.retried_valid == 0 {
                return CellOutcome::Failed {
                    spec: pair.gpu.clone(),
                    cpu_spec: pair.cpu.clone(),
                    error: PceError::io(format!(
                        "all {} responses were invalid or refused after retries",
                        acc.total()
                    )),
                };
            }
            CellOutcome::Completed(SpecOutcome {
                spec: pair.gpu.clone(),
                cpu_spec: pair.cpu.clone(),
                dataset_ids: dataset.samples.iter().map(|s| s.id.clone()).collect(),
                zero_shot_correct: detail.zero_shot_correct,
                table: detail.table,
                funnel,
            })
        })
        .collect()
}

/// Wall-clock of one suite stage, as serialized into `BENCH_suite.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`corpus`, `tokenize`, `rq1-bank`, `spec-eval`,
    /// `flip-analysis`).
    pub stage: String,
    /// Wall-clock milliseconds spent in the stage.
    pub wall_ms: f64,
}

/// The suite's performance report: per-stage wall-clock plus the cache
/// bundle's hit/miss counters. Written as `BENCH_suite.json` by the
/// `suite` bin under `--timings`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteBench {
    /// GPU specs on the matrix's GPU axis.
    pub specs: usize,
    /// CPU specs on the matrix's CPU axis.
    pub cpu_specs: usize,
    /// Evaluated (GPU × CPU) cells.
    pub cells: usize,
    /// Models per cell (the Table-1 zoo).
    pub models_per_spec: usize,
    /// Per-stage wall-clock, in execution order.
    pub stages: Vec<StageTiming>,
    /// End-to-end wall-clock milliseconds (stages plus glue).
    pub total_ms: f64,
    /// Cache effectiveness across every layer.
    pub caches: CacheReport,
    /// Suite-wide response ledger (all completed cells merged); all-zero
    /// on chaos-free runs.
    pub accounting: ResponseAccounting,
}

impl SuiteBench {
    /// Render a compact human-readable summary (one line per stage, then
    /// per cache).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "suite bench: {} GPU x {} CPU specs ({} cells) x {} models, total {:.1} ms\n",
            self.specs, self.cpu_specs, self.cells, self.models_per_spec, self.total_ms
        ));
        for s in &self.stages {
            out.push_str(&format!("  stage {:<14} {:>10.1} ms\n", s.stage, s.wall_ms));
        }
        let c = &self.caches;
        for (name, counters) in [
            ("summary", c.summary),
            ("profile", c.profile),
            ("analysis", c.analysis),
            ("classify-parse", c.classify_parse),
            ("rq1-parse", c.rq1_parse),
        ] {
            out.push_str(&format!(
                "  cache {:<15} {:>8} hits / {:>7} lookups ({:.1}% hit)\n",
                name,
                counters.hits,
                counters.total(),
                100.0 * counters.hit_rate()
            ));
        }
        out.push_str(&format!("  prompt renders    {:>8}\n", c.prompt_renders));
        if self.accounting.faulted() {
            let a = &self.accounting;
            out.push_str(&format!(
                "  chaos: {} injected / {} recovered / {} invalid / {} refused ({} retries, {} ms backoff)\n",
                a.injected, a.recovered(), a.invalid, a.refused, a.retries, a.backoff_ms
            ));
        }
        out
    }
}

/// Run the whole suite with stage-level timing instrumentation.
///
/// The outcome is byte-identical to [`run_suite_cached`] on the same
/// bundle; the accompanying [`SuiteBench`] carries per-stage wall-clock
/// and the bundle's cache counters.
pub fn run_suite_timed(
    suite: &Suite,
    caches: &SuiteCaches,
) -> Result<(SuiteOutcome, SuiteBench), PceError> {
    validate_axes(suite)?;
    let t_total = Instant::now();
    let mut stages = Vec::new();
    let mut stage = |name: &str, t: Instant| {
        stages.push(StageTiming {
            stage: name.to_string(),
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        });
    };

    // Exactly the untimed pipeline, observed: the shared build and the
    // spec evaluation are the same functions run_suite_cached composes.
    let shared = SharedBuild::build_instrumented(suite, caches, &mut stage)?;

    let t = Instant::now();
    let cells = run_specs(suite, &shared, caches);
    stage("spec-eval", t);

    let t = Instant::now();
    let flips = analyze_flips(suite, &shared.corpus, &cells);
    stage("flip-analysis", t);

    let outcome = SuiteOutcome { cells, flips };
    let bench = SuiteBench {
        specs: suite.specs.len(),
        cpu_specs: suite.cpu_specs.len(),
        cells: suite.specs.len() * suite.cpu_specs.len(),
        models_per_spec: pce_llm::model_zoo().len(),
        stages,
        total_ms: t_total.elapsed().as_secs_f64() * 1e3,
        caches: caches.report(),
        accounting: outcome.accounting(),
    };
    Ok((outcome, bench))
}

/// Cross-spec label comparison plus flip-tracking accuracy, one section
/// per language.
///
/// A kernel's label depends only on its own language's axis spec, so the
/// CUDA section reads one completed cell per GPU row and the OMP section
/// one per CPU column — after asserting the labels really are invariant
/// along the other axis. Failed cells are skipped: an axis spec with no
/// completed cell at all is dropped from its section.
fn analyze_flips(suite: &Suite, corpus: &[Program], cells: &[CellOutcome]) -> FlipAnalysis {
    let n_cpu = suite.cpu_specs.len();
    let cell = |gpu_idx: usize, cpu_idx: usize| cells[gpu_idx * n_cpu + cpu_idx].completed();

    // Labels of one language must not vary along the other language's
    // axis — the routing invariant the whole refactor exists to enforce.
    // Checked across every pair of completed cells that shares a row or
    // column.
    for (i, _) in suite.specs.iter().enumerate() {
        for j in 1..n_cpu {
            let (Some(a), Some(b)) = (cell(i, j), cell(i, 0)) else {
                continue;
            };
            for (k, p) in corpus.iter().enumerate() {
                if p.language == Language::Cuda {
                    assert_eq!(
                        a.funnel.corpus_labels[k], b.funnel.corpus_labels[k],
                        "{}: CUDA label varied along the CPU axis",
                        p.id
                    );
                }
            }
        }
    }
    for j in 0..n_cpu {
        for i in 1..suite.specs.len() {
            let (Some(a), Some(b)) = (cell(i, j), cell(0, j)) else {
                continue;
            };
            for (k, p) in corpus.iter().enumerate() {
                if p.language == Language::Omp {
                    assert_eq!(
                        a.funnel.corpus_labels[k], b.funnel.corpus_labels[k],
                        "{}: OMP label varied along the GPU axis",
                        p.id
                    );
                }
            }
        }
    }

    let language_section = |language: Language| -> LanguageFlips {
        let axis_class = language.spec_class();
        // One completed cell per axis index; axis entries with no
        // completed cell are dropped (their labels are unknowable).
        let (axis_names, label_cells): (Vec<String>, Vec<&SpecOutcome>) = match axis_class {
            SpecClass::Gpu => suite
                .specs
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    (0..n_cpu)
                        .find_map(|j| cell(i, j))
                        .map(|c| (s.name.clone(), c))
                })
                .unzip(),
            SpecClass::Cpu => suite
                .cpu_specs
                .iter()
                .enumerate()
                .filter_map(|(j, s)| {
                    (0..suite.specs.len())
                        .find_map(|i| cell(i, j))
                        .map(|c| (s.name.clone(), c))
                })
                .unzip(),
        };
        let kernels: Vec<KernelLabels> = corpus
            .iter()
            .enumerate()
            .filter(|(_, p)| p.language == language)
            .map(|(i, p)| KernelLabels {
                id: p.id.clone(),
                family: p.family.clone(),
                labels: label_cells
                    .iter()
                    .map(|c| c.funnel.corpus_labels[i])
                    .collect(),
            })
            .collect();
        let flipping = kernels.iter().filter(|k| k.flips()).count();
        let flips_vs_reference = (0..label_cells.len())
            .map(|j| {
                kernels
                    .iter()
                    .filter(|k| k.labels[j] != k.labels[0])
                    .count()
            })
            .collect();

        // Pool zero-shot correctness over every (model, cell, sample) of
        // this language, split by whether the sample's kernel flips
        // anywhere along its axis.
        let language_of: BTreeMap<&str, Language> =
            corpus.iter().map(|p| (p.id.as_str(), p.language)).collect();
        let flippy: BTreeSet<&str> = kernels
            .iter()
            .filter(|k| k.flips())
            .map(|k| k.id.as_str())
            .collect();
        let (mut flip_hits, mut flip_n, mut stable_hits, mut stable_n) = (0u64, 0u64, 0u64, 0u64);
        for c in cells.iter().filter_map(CellOutcome::completed) {
            for (_, correct) in &c.zero_shot_correct {
                for (id, &ok) in c.dataset_ids.iter().zip(correct) {
                    if language_of.get(id.as_str()) != Some(&language) {
                        continue;
                    }
                    if flippy.contains(id.as_str()) {
                        flip_n += 1;
                        flip_hits += ok as u64;
                    } else {
                        stable_n += 1;
                        stable_hits += ok as u64;
                    }
                }
            }
        }
        let pct = |hits: u64, n: u64| (n > 0).then(|| 100.0 * hits as f64 / n as f64);
        LanguageFlips {
            language,
            axis_class,
            spec_names: axis_names,
            kernels,
            flipping,
            flips_vs_reference,
            accuracy_on_flipping: pct(flip_hits, flip_n),
            accuracy_on_stable: pct(stable_hits, stable_n),
        }
    };

    let by_language = vec![
        language_section(Language::Cuda),
        language_section(Language::Omp),
    ];
    let flipping = by_language.iter().map(|l| l.flipping).sum();
    FlipAnalysis {
        by_language,
        flipping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shrink(suite: &mut Suite) {
        // The structure, not the scale, is under test.
        suite.base.corpus.cuda_programs = 90;
        suite.base.corpus.omp_programs = 72;
        suite.base.rq1_rooflines = 16;
        suite.base.pipeline.per_combo_cap = 10;
    }

    fn tiny_suite() -> Suite {
        let mut suite =
            Suite::smoke_with_specs(vec![HardwareSpec::rtx_3080(), HardwareSpec::mi250x()]);
        shrink(&mut suite);
        suite
    }

    fn tiny_matrix_suite() -> Suite {
        let mut suite = Suite::smoke_with_matrix(
            vec![HardwareSpec::rtx_3080(), HardwareSpec::mi250x()],
            vec![HardwareSpec::epyc_9654(), HardwareSpec::grace()],
        );
        shrink(&mut suite);
        suite
    }

    #[test]
    fn suite_produces_one_outcome_per_cell_in_gpu_major_order() {
        let suite = tiny_matrix_suite();
        let outcome = run_suite(&suite).unwrap();
        assert_eq!(outcome.completed().len(), 4);
        assert!(outcome.failures().is_empty());
        let cells = suite.cells();
        for (pair, out) in cells.iter().zip(outcome.completed()) {
            assert_eq!(out.spec.name, pair.gpu.name);
            assert_eq!(out.cpu_spec.name, pair.cpu.name);
            assert_eq!(out.table.rows.len(), 9);
            assert!(out.table.total_cost > 0.0);
            assert_eq!(out.dataset_ids.len(), out.funnel.final_size);
            assert_eq!(
                out.pair_label(),
                format!("{} + {}", pair.gpu.name, pair.cpu.name)
            );
        }
        // Flip sections: CUDA over the GPU axis, OMP over the CPU axis.
        let cuda = outcome.flips.language(Language::Cuda).unwrap();
        assert_eq!(cuda.axis_class, SpecClass::Gpu);
        assert_eq!(cuda.spec_names.len(), 2);
        assert_eq!(cuda.flips_vs_reference[0], 0);
        let omp = outcome.flips.language(Language::Omp).unwrap();
        assert_eq!(omp.axis_class, SpecClass::Cpu);
        assert_eq!(omp.spec_names.len(), 2);
        assert_eq!(omp.flips_vs_reference[0], 0);
        assert_eq!(
            outcome.flips.total_kernels(),
            suite.base.corpus.cuda_programs + suite.base.corpus.omp_programs
        );
    }

    #[test]
    fn consumer_vs_hpc_silicon_flips_dp_kernels() {
        // The 3080's 1/64-rate DP pipes put its DP ridge at ~0.6 flop/B;
        // the MI250X's full-rate DP over 3.2 TB/s sits at ~14.6. Any
        // DP-heavy CUDA kernel in between must flip.
        let outcome = run_suite(&tiny_suite()).unwrap();
        let cuda = outcome.flips.language(Language::Cuda).unwrap();
        assert!(
            cuda.flipping > 0,
            "no CUDA kernel flipped between RTX 3080 and MI250X"
        );
        assert!(cuda.flipping < cuda.kernels.len(), "every kernel flipped");
        // One CPU spec on the axis: OMP labels cannot flip here.
        let omp = outcome.flips.language(Language::Omp).unwrap();
        assert_eq!(omp.flipping, 0);
        assert!(omp.accuracy_on_flipping.is_none());
    }

    #[test]
    fn cpu_axis_flips_omp_kernels() {
        // EPYC 9654 (SP ridge 16.0) vs Xeon 8480+ (23.3): OMP kernels
        // between the two ridges flip; CUDA labels must not move at all.
        // (Grace at 13.1 is closer to the EPYC and brackets almost no
        // kernel in this corpus, so the EPYC/Xeon pair is the one that
        // reliably exercises CPU-axis flips.)
        let mut suite = Suite::smoke_with_matrix(
            vec![HardwareSpec::rtx_3080()],
            vec![HardwareSpec::epyc_9654(), HardwareSpec::xeon_8480p()],
        );
        shrink(&mut suite);
        let outcome = run_suite(&suite).unwrap();
        let omp = outcome.flips.language(Language::Omp).unwrap();
        assert!(
            omp.flipping > 0,
            "no OMP kernel flipped between EPYC 9654 and Xeon 8480+"
        );
        assert!(omp.flipping < omp.kernels.len());
        let flipper = omp.kernels.iter().find(|k| k.flips()).unwrap();
        assert!(flipper.labels.contains(&Boundedness::Compute));
        assert!(flipper.labels.contains(&Boundedness::Bandwidth));
        let cuda = outcome.flips.language(Language::Cuda).unwrap();
        assert_eq!(cuda.flipping, 0, "single GPU spec cannot flip CUDA");
    }

    #[test]
    fn flip_analysis_counts_are_consistent() {
        let outcome = run_suite(&tiny_matrix_suite()).unwrap();
        let mut total = 0;
        for section in &outcome.flips.by_language {
            let recount = section.kernels.iter().filter(|k| k.flips()).count();
            assert_eq!(section.flipping, recount, "{}", section.language);
            total += recount;
            for k in &section.kernels {
                assert_eq!(k.labels.len(), section.spec_names.len());
            }
            for acc in [section.accuracy_on_flipping, section.accuracy_on_stable]
                .into_iter()
                .flatten()
            {
                assert!((0.0..=100.0).contains(&acc), "{acc}");
            }
        }
        assert_eq!(outcome.flips.flipping, total);
    }

    #[test]
    fn warm_and_cold_bundles_produce_identical_outcomes() {
        let suite = tiny_suite();
        let cold = run_suite(&suite).unwrap();
        let caches = SuiteCaches::new();
        let warm_first = run_suite_cached(&suite, &caches).unwrap();
        let warm_second = run_suite_cached(&suite, &caches).unwrap();
        assert_eq!(cold, warm_first, "cold vs first cached run");
        assert_eq!(cold, warm_second, "cold vs fully-warm rerun");
        // The rerun must have been served from the profile memo and the
        // analysis cache, not recomputed.
        let report = caches.report();
        assert!(report.profile.hits > 0, "{report:?}");
        assert!(report.analysis.hits > 0, "{report:?}");
        assert!(report.summary.hits > 0, "{report:?}");
    }

    #[test]
    fn timed_run_matches_untimed_and_reports_stages() {
        let suite = tiny_matrix_suite();
        let caches = SuiteCaches::new();
        let (outcome, bench) = run_suite_timed(&suite, &caches).unwrap();
        assert_eq!(outcome, run_suite(&suite).unwrap());
        assert_eq!(bench.specs, suite.specs.len());
        assert_eq!(bench.cpu_specs, suite.cpu_specs.len());
        assert_eq!(bench.cells, outcome.completed().len());
        assert!(!bench.accounting.faulted(), "chaos-free run");
        assert_eq!(bench.models_per_spec, 9);
        let names: Vec<&str> = bench.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            [
                "corpus",
                "tokenize",
                "rq1-bank",
                "spec-eval",
                "flip-analysis"
            ]
        );
        assert!(bench.stages.iter().all(|s| s.wall_ms >= 0.0));
        assert!(bench.total_ms >= bench.stages.iter().map(|s| s.wall_ms).sum::<f64>() * 0.99);
        // Both shot styles × every cell rendered once per sample.
        let expected: usize = outcome
            .completed()
            .iter()
            .map(|s| 2 * s.dataset_ids.len())
            .sum();
        assert_eq!(bench.caches.prompt_renders as usize, expected);
        let summary = bench.summary();
        for needle in ["spec-eval", "analysis", "prompt renders", "cells"] {
            assert!(summary.contains(needle), "missing {needle}:\n{summary}");
        }
    }

    #[test]
    fn default_suite_spans_the_full_catalog() {
        let suite = Suite::default();
        assert!(suite.specs.len() >= 6, "suite must span ≥ 6 GPU presets");
        assert!(
            suite.cpu_specs.len() >= 3,
            "suite must span ≥ 3 CPU presets"
        );
        assert_eq!(Suite::smoke().specs.len(), suite.specs.len());
        assert_eq!(Suite::smoke().cpu_specs.len(), suite.cpu_specs.len());
        assert_eq!(
            suite.cells().len(),
            suite.specs.len() * suite.cpu_specs.len()
        );
        assert!(suite.validate().is_empty());
    }

    #[test]
    fn misclassed_axes_are_rejected() {
        let mut suite = tiny_suite();
        suite.specs.push(HardwareSpec::epyc_9654());
        suite.cpu_specs.push(HardwareSpec::rtx_4090());
        let problems = suite.validate();
        assert_eq!(problems.len(), 2, "{problems:?}");
        suite.cpu_specs.clear();
        assert!(suite
            .validate()
            .iter()
            .any(|p| p.contains("at least one CPU spec")));
    }

    #[test]
    fn misclassed_cells_degrade_instead_of_poisoning_the_matrix() {
        // A GPU spec in the CPU slot: every cell of that column fails
        // with a Spec error, the valid column still completes, and the
        // flip analysis drops the dead axis entry.
        let mut suite = tiny_suite();
        suite.cpu_specs = vec![HardwareSpec::epyc_9654(), HardwareSpec::rtx_3080()];
        let outcome = run_suite(&suite).unwrap();
        assert_eq!(outcome.cells.len(), 4);
        assert_eq!(outcome.completed().len(), 2);
        let failures = outcome.failures();
        assert_eq!(failures.len(), 2);
        for (label, error) in &failures {
            assert!(label.contains("+ NVIDIA GeForce RTX 3080"), "{label}");
            assert_eq!(error.kind(), "spec");
            assert!(error.to_string().contains("on the CPU axis"), "{error}");
        }
        // The OMP section keeps only the axis entry with completed cells.
        let omp = outcome.flips.language(Language::Omp).unwrap();
        assert_eq!(omp.spec_names.len(), 1);
        let cuda = outcome.flips.language(Language::Cuda).unwrap();
        assert_eq!(cuda.spec_names.len(), 2);
    }

    #[test]
    fn chaos_suite_completes_every_cell_with_a_balanced_ledger() {
        let mut suite = tiny_suite();
        suite.base.chaos = Some(crate::study::ChaosConfig::uniform(42, 0.1));
        let outcome = run_suite(&suite).unwrap();
        // A 10% fault rate recovers through retries; no cell dies.
        assert_eq!(outcome.completed().len(), outcome.cells.len());
        let acc = outcome.accounting();
        assert!(acc.injected > 0, "chaos must actually inject");
        assert!(acc.retried_valid > 0, "retries must actually recover");
        assert!(acc.balanced(), "{acc:?}");
        for s in outcome.completed() {
            assert!(s.table.accounting().balanced());
        }
        // The same seed reproduces the ledger exactly.
        let again = run_suite(&suite).unwrap();
        assert_eq!(outcome, again);
    }

    #[test]
    fn empty_axes_are_suite_fatal() {
        let mut suite = tiny_suite();
        suite.cpu_specs.clear();
        let err = run_suite(&suite).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid spec: suite needs at least one CPU spec"
        );
        suite.specs.clear();
        let err = run_suite(&suite).unwrap_err();
        assert!(err.to_string().contains("at least one GPU spec"));
    }
}
