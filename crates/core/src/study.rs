//! Study configuration and the shared data build.

use serde::{Deserialize, Serialize};

use pce_dataset::{run_pipeline, Dataset, PipelineConfig, PipelineReport, Split};
use pce_fault::{FaultPlan, PceError, RetryPolicy};
use pce_kernels::{build_corpus, CorpusConfig, Program};
use pce_roofline::SpecPair;

/// Chaos configuration: the seeded fault plan the surrogate engine
/// consults, plus the retry policy the classification loops run under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// The fault plan (seed + per-kind injection rates).
    pub plan: FaultPlan,
    /// Bounded-retry policy for classification requests.
    pub retry: RetryPolicy,
}

impl ChaosConfig {
    /// A chaos config splitting one total fault rate evenly across all
    /// fault kinds, with the default retry policy — what
    /// `suite --chaos <seed> --fault-rate <r>` builds.
    pub fn uniform(seed: u64, fault_rate: f64) -> ChaosConfig {
        ChaosConfig {
            plan: FaultPlan::uniform(seed, fault_rate),
            retry: RetryPolicy::default(),
        }
    }
}

/// Top-level study configuration. Defaults reproduce the paper's setup:
/// RTX 3080 for the CUDA half (paired with the EPYC 9654 CPU preset for
/// the OMP half), 446 CUDA + 303 OMP programs, 8e3-token cutoff,
/// 85-per-cell balancing, 80/20 split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Study {
    /// Profiling / prompt hardware, one spec per machine class: CUDA
    /// samples use `specs.gpu`, OMP samples `specs.cpu` — in the
    /// pipeline's ground-truth labeling *and* in the rendered prompts.
    pub specs: SpecPair,
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Dataset pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Number of RQ1 random rooflines (the paper used 240).
    pub rq1_rooflines: usize,
    /// Master evaluation seed.
    pub seed: u64,
    /// Optional chaos layer: fault injection plus retry policy. `None`
    /// (the default) runs the engine fault-free and renders byte-identical
    /// to the historical golden reports.
    pub chaos: Option<ChaosConfig>,
}

impl Default for Study {
    fn default() -> Self {
        let specs = SpecPair::paper_default();
        Study {
            specs: specs.clone(),
            corpus: CorpusConfig::default(),
            pipeline: PipelineConfig {
                specs,
                ..Default::default()
            },
            rq1_rooflines: 240,
            seed: 0x9f0f_11e5,
            chaos: None,
        }
    }
}

impl Study {
    /// A reduced-scale study for tests and quick runs: smaller corpus,
    /// smaller balanced cells, fewer RQ1 rooflines. The *structure* of the
    /// experiments is identical.
    pub fn smoke() -> Self {
        let mut study = Study {
            corpus: CorpusConfig {
                seed: 7,
                cuda_programs: 120,
                omp_programs: 90,
            },
            rq1_rooflines: 40,
            ..Study::default()
        };
        study.pipeline.per_combo_cap = 15;
        study.pipeline.tokenizer_vocab = 500;
        study.pipeline.tokenizer_stride = 13;
        study
    }

    /// The same study re-targeted at a different spec pair: both the
    /// profiling/labeling hardware and the prompt hardware move together,
    /// everything else (corpus, tokenizer, seeds) stays fixed. This is the
    /// per-cell derivation the cross-hardware suite uses.
    pub fn with_specs(&self, specs: SpecPair) -> Study {
        let mut study = self.clone();
        study.pipeline.specs = specs.clone();
        study.specs = specs;
        study
    }
}

/// The shared data build: corpus, profiles, balanced dataset, split.
#[derive(Debug, Clone)]
pub struct StudyData {
    /// The generated corpus (all built programs).
    pub corpus: Vec<Program>,
    /// The balanced evaluation dataset (paper: 340 samples).
    pub dataset: Dataset,
    /// The 80/20 fine-tuning split.
    pub split: Split,
    /// The pipeline funnel report.
    pub report: PipelineReport,
}

impl StudyData {
    /// Build everything once; reused by every experiment. Fails only when
    /// corpus generation does (a family registry violation, surfaced as
    /// [`PceError::Spec`]).
    pub fn build(study: &Study) -> Result<StudyData, PceError> {
        let corpus = build_corpus(&study.corpus)?;
        let (dataset, split, report) = run_pipeline(&corpus, &study.pipeline);
        Ok(StudyData {
            corpus,
            dataset,
            split,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_study_matches_paper_constants() {
        let s = Study::default();
        assert_eq!(s.corpus.cuda_programs, 446);
        assert_eq!(s.corpus.omp_programs, 303);
        assert_eq!(s.pipeline.max_tokens, 8_000);
        assert_eq!(s.pipeline.per_combo_cap, 85);
        assert_eq!(s.rq1_rooflines, 240);
        assert!((s.pipeline.train_fraction - 0.8).abs() < 1e-12);
    }

    #[test]
    fn smoke_study_builds_balanced_data() {
        let data = StudyData::build(&Study::smoke()).expect("study builds");
        assert!(!data.dataset.is_empty());
        assert_eq!(data.dataset.len() % 4, 0, "4 balanced cells");
        assert_eq!(
            data.dataset.len(),
            data.split.train.len() + data.split.validation.len()
        );
        assert_eq!(data.corpus.len(), 210);
    }
}
