//! # pce-prompt
//!
//! Prompt construction for the roofline-classification study, mirroring the
//! paper's two prompt templates:
//!
//! * [`rq1`] — the *baseline roofline calculation* prompts (Fig. 3):
//!   k-shot question/answer examples (optionally with chain-of-thought
//!   "Thought:" lines) over randomly generated rooflines, followed by a
//!   query roofline whose AI must be classified,
//! * [`classify`] — the *source classification* system prompt (Fig. 4):
//!   hardware specs, launch geometry, CLI arguments, and the concatenated
//!   source code, with pseudo-code examples (zero-shot, RQ2) or real
//!   in-language code examples (few-shot, RQ3).
//!
//! Prompts are plain strings: the surrogate LLM engines re-parse them just
//! as a hosted model would have to.

#![forbid(unsafe_code)]

pub mod classify;
pub mod examples;
pub mod rq1;

pub use classify::{render_classify_prompt, ClassifyRequest, ShotStyle};
pub use rq1::{generate_rq1_suite, render_rq1_prompt, Rq1Item, Rq1Suite};
