//! The source-classification system prompt (paper Fig. 4), shared by RQ2
//! (zero-shot, pseudo-code examples) and RQ3 (few-shot, real code
//! examples).

use serde::{Deserialize, Serialize};

use pce_roofline::HardwareSpec;

use crate::examples::examples_for;

/// Whether the prompt carries pseudo-code (RQ2) or real code (RQ3)
/// examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShotStyle {
    /// RQ2: pseudo-code examples, minimal instructions.
    ZeroShot,
    /// RQ3: two real in-language code examples.
    FewShot,
}

/// Everything interpolated into the Fig.-4 template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifyRequest {
    /// `"CUDA"` or `"OMP"`.
    pub language: String,
    /// Kernel name the model is asked about.
    pub kernel_name: String,
    /// Target hardware.
    pub hardware: HardwareSpec,
    /// Launch geometry string `"(gx,gy,gz) and (bx,by,bz)"`.
    pub geometry: String,
    /// Command-line arguments of the executable.
    pub args: Vec<String>,
    /// Concatenated source code of the program.
    pub source: String,
}

/// Render the full classification prompt.
pub fn render_classify_prompt(req: &ClassifyRequest, style: ShotStyle) -> String {
    let hw = &req.hardware;
    let mut out = String::with_capacity(req.source.len() + 2048);
    out.push_str(
        "You are a GPU performance analysis expert that classifies kernels into \
         Arithmetic Intensity Roofline model categories based on their source code \
         characteristics. Your task is to provide one of the following performance \
         boundedness classifications: Compute or Bandwidth.\n\n\
         A kernel is considered Compute bound if its performance is primarily limited \
         by the number of operations it performs, and Bandwidth bound if its \
         performance is primarily limited by the rate at which data can be moved \
         between memory and processing units.\n\n\
         Provide only one word as your response, chosen from the set: \
         ['Compute', 'Bandwidth'].\n\nExamples:\n\n",
    );
    for (i, example) in examples_for(style, &req.language).iter().enumerate() {
        out.push_str(&format!(
            "Example {}:\nKernel Source Code{}:\n{}\nResponse: {}\n\n",
            i + 1,
            if style == ShotStyle::ZeroShot {
                " (simplified)"
            } else {
                ""
            },
            example.code,
            example.label.answer_token()
        ));
    }
    out.push_str(&format!(
        "Now, analyze the following source codes for the requested kernel of the \
         specified hardware.\n\n\
         Classify the {lang} kernel called {kernel} as Bandwidth or Compute bound. \
         The system it will execute on is a {gpu} with:\n\
         - peak single-precision performance of {sp} GFLOP/s\n\
         - peak double-precision performance of {dp} GFLOP/s\n\
         - peak integer performance of {int} GINTOP/s\n\
         - max bandwidth of {bw} GB/s\n\n\
         The block and grid sizes of the invoked kernel are {geometry}, respectively. \
         The executable running this kernel is launched with the following \
         command-line arguments: {args}.\n\n\
         Below is the source code of the requested {lang} kernel:\n\n{source}\n",
        lang = req.language,
        kernel = req.kernel_name,
        gpu = hw.name,
        sp = hw.peak_sp_gflops,
        dp = hw.peak_dp_gflops,
        int = hw.peak_int_giops,
        bw = hw.bandwidth_gbs,
        geometry = req.geometry,
        args = req.args.join(" "),
        source = req.source,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> ClassifyRequest {
        ClassifyRequest {
            language: "CUDA".into(),
            kernel_name: "saxpy".into(),
            hardware: HardwareSpec::rtx_3080(),
            geometry: "(4096,1,1) and (256,1,1)".into(),
            args: vec!["1048576".into(), "100".into()],
            source: "__global__ void saxpy(...) { }".into(),
        }
    }

    #[test]
    fn prompt_carries_all_hardware_numbers() {
        let prompt = render_classify_prompt(&request(), ShotStyle::ZeroShot);
        for needle in ["29770", "465.1", "14885", "760"] {
            assert!(prompt.contains(needle), "missing {needle}");
        }
        assert!(prompt.contains("NVIDIA GeForce RTX 3080"));
    }

    #[test]
    fn prompt_carries_kernel_identity_and_launch() {
        let prompt = render_classify_prompt(&request(), ShotStyle::ZeroShot);
        assert!(prompt.contains("kernel called saxpy"));
        assert!(prompt.contains("(4096,1,1) and (256,1,1)"));
        assert!(prompt.contains("arguments: 1048576 100"));
        assert!(prompt.contains("__global__ void saxpy"));
    }

    #[test]
    fn zero_shot_uses_pseudo_code() {
        let prompt = render_classify_prompt(&request(), ShotStyle::ZeroShot);
        assert!(prompt.contains("(simplified)"));
        assert!(prompt.contains("load_data(large_array)"));
    }

    #[test]
    fn few_shot_uses_real_language_examples() {
        let prompt = render_classify_prompt(&request(), ShotStyle::FewShot);
        assert!(prompt.contains("power_iter"));
        assert!(!prompt.contains("(simplified)"));

        let omp_req = ClassifyRequest {
            language: "OMP".into(),
            ..request()
        };
        let omp_prompt = render_classify_prompt(&omp_req, ShotStyle::FewShot);
        assert!(omp_prompt.contains("#pragma omp target"));
        assert!(!omp_prompt.contains("power_iter"));
    }

    #[test]
    fn both_class_tokens_are_demonstrated() {
        let prompt = render_classify_prompt(&request(), ShotStyle::ZeroShot);
        assert!(prompt.contains("Response: Compute"));
        assert!(prompt.contains("Response: Bandwidth"));
    }

    #[test]
    fn source_code_is_appended_at_the_end() {
        // §2.2: "concatenate all the source files ... appended to the end
        // of the LLM query prompt".
        let prompt = render_classify_prompt(&request(), ShotStyle::ZeroShot);
        let src_pos = prompt.find("__global__ void saxpy").unwrap();
        assert!(src_pos > prompt.len() - 60);
    }
}
