//! Few-shot example banks.
//!
//! RQ2 (zero-shot) prompts carry the paper's *pseudo-code* examples; RQ3
//! (few-shot) replaces them with *real* code examples in the queried
//! language. As in the paper (§3.3), the real examples are **not** part of
//! the evaluation dataset and only two are supplied per query to avoid
//! bloating the prompt.

use pce_roofline::Boundedness;

use crate::classify::ShotStyle;

/// One worked classification example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Short description of what the snippet shows.
    pub code: &'static str,
    /// Its classification.
    pub label: Boundedness,
}

/// The paper's pseudo-code examples (Fig. 4), used for RQ2.
pub fn pseudo_examples() -> [Example; 2] {
    [
        Example {
            code: "for i = 0 to 1000000 {\n    a[i] = a[i] + b[i];\n}",
            label: Boundedness::Compute,
        },
        Example {
            code: "for i = 0 to 10 {\n    load_data(large_array);\n    process_data(large_array);\n    store_data(large_array);\n}",
            label: Boundedness::Bandwidth,
        },
    ]
}

/// Real CUDA examples for RQ3 (not drawn from the evaluation corpus).
pub fn cuda_examples() -> [Example; 2] {
    [
        Example {
            // An iteration-heavy independent kernel: compute-bound.
            code: "__global__ void power_iter(int n, int steps, float* v) {\n\
                   \x20 int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   \x20 if (i >= n) return;\n\
                   \x20 float x = v[i];\n\
                   \x20 for (int s = 0; s < steps; s++) {\n\
                   \x20   x = x * 1.00001f + 0.000001f;\n\
                   \x20   x = x - x * x * 0.0000001f;\n\
                   \x20 }\n\
                   \x20 v[i] = x;\n}",
            label: Boundedness::Compute,
        },
        Example {
            // A pure streaming kernel: bandwidth-bound.
            code: "__global__ void stream_store(long n, const float* in, float* out) {\n\
                   \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
                   \x20 if (i < n) out[i] = 0.5f * in[i];\n}",
            label: Boundedness::Bandwidth,
        },
    ]
}

/// Real OpenMP-offload examples for RQ3.
pub fn omp_examples() -> [Example; 2] {
    [
        Example {
            code: "#pragma omp target teams distribute parallel for map(tofrom: v[0:n])\n\
                   for (int i = 0; i < n; i++) {\n\
                   \x20 double x = v[i];\n\
                   \x20 for (int s = 0; s < 5000; s++) x = x * 1.0000001 + 1e-9;\n\
                   \x20 v[i] = x;\n}",
            label: Boundedness::Compute,
        },
        Example {
            code: "#pragma omp target teams distribute parallel for map(to: in[0:n]) map(from: out[0:n])\n\
                   for (long i = 0; i < n; i++) out[i] = in[i] * 0.5;",
            label: Boundedness::Bandwidth,
        },
    ]
}

/// The examples appropriate for a prompt style and language.
pub fn examples_for(style: ShotStyle, language_label: &str) -> [Example; 2] {
    match style {
        ShotStyle::ZeroShot => pseudo_examples(),
        ShotStyle::FewShot => {
            if language_label.eq_ignore_ascii_case("cuda") {
                cuda_examples()
            } else {
                omp_examples()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_bank_has_one_example_per_class() {
        for bank in [pseudo_examples(), cuda_examples(), omp_examples()] {
            let labels: Vec<_> = bank.iter().map(|e| e.label).collect();
            assert!(labels.contains(&Boundedness::Compute));
            assert!(labels.contains(&Boundedness::Bandwidth));
        }
    }

    #[test]
    fn few_shot_examples_match_language() {
        let cuda = examples_for(ShotStyle::FewShot, "CUDA");
        assert!(cuda[0].code.contains("__global__"));
        let omp = examples_for(ShotStyle::FewShot, "OMP");
        assert!(omp[0].code.contains("#pragma omp"));
    }

    #[test]
    fn zero_shot_uses_pseudo_code_regardless_of_language() {
        let a = examples_for(ShotStyle::ZeroShot, "CUDA");
        let b = examples_for(ShotStyle::ZeroShot, "OMP");
        assert_eq!(a[0].code, b[0].code);
        assert!(!a[0].code.contains("__global__"));
    }

    #[test]
    fn real_examples_are_not_corpus_programs() {
        // Corpus kernels carry benchmark-harness mains; the example bank is
        // bare kernels only.
        for e in cuda_examples().iter().chain(omp_examples().iter()) {
            assert!(!e.code.contains("int main"));
        }
    }
}
