//! RQ1 prompts: baseline roofline calculations over random rooflines
//! (paper Fig. 3).
//!
//! 240 random rooflines are generated; for each, one bandwidth-bound and
//! one compute-bound AI value is drawn. Prompts show 2, 4, or 8 worked
//! examples — optionally with chain-of-thought "Thought:" text — and end
//! with the query question.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use pce_roofline::{Boundedness, Roofline};

/// One RQ1 roofline question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq1Item {
    /// Peak performance in GFLOP/s.
    pub peak_gflops: f64,
    /// Max bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// The queried arithmetic intensity (FLOP/byte).
    pub ai: f64,
    /// Achieved performance shown in the question (GFLOP/s) — flavour
    /// text the model does not need, exactly as in the paper's prompt.
    pub performance_gflops: f64,
    /// Ground-truth class of `ai` against this roofline.
    pub truth: Boundedness,
    /// How far the AI sits from the balance point, in decades
    /// (`|log10(ai / balance)|`) — the question's intrinsic difficulty.
    pub margin_decades: f64,
}

/// A full RQ1 evaluation suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq1Suite {
    /// The query items, two per random roofline (one BB, one CB).
    pub items: Vec<Rq1Item>,
    /// Seed the suite was generated from.
    pub seed: u64,
}

/// Generate the RQ1 suite: `rooflines` random rooflines × 2 query AIs.
///
/// Rooflines are sampled over a realistic span (laptop iGPU to data-center
/// accelerator); query AIs sit between 0.1 and 1.0 decades away from the
/// balance point, as in the paper's worked examples.
pub fn generate_rq1_suite(rooflines: usize, seed: u64) -> Rq1Suite {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut items = Vec::with_capacity(rooflines * 2);
    for _ in 0..rooflines {
        let peak = 10f64.powf(rng.gen_range(1.0..4.5)); // 10 GF/s .. ~30 TF/s
        let bw = 10f64.powf(rng.gen_range(1.0..3.2)); // 10 GB/s .. ~1.6 TB/s
        let roof = Roofline::new(peak, bw);
        let balance = roof.balance_point();
        for &side in &[Boundedness::Bandwidth, Boundedness::Compute] {
            let margin = rng.gen_range(0.1..1.0);
            let ai = match side {
                Boundedness::Bandwidth => balance * 10f64.powf(-margin),
                Boundedness::Compute => balance * 10f64.powf(margin),
            };
            let attainable = roof.attainable_gops(ai);
            let performance = attainable * rng.gen_range(0.3..0.95);
            items.push(Rq1Item {
                peak_gflops: round3(peak),
                bandwidth_gbs: round3(bw),
                ai: round3(ai),
                performance_gflops: round3(performance),
                truth: side,
                margin_decades: margin,
            });
        }
    }
    Rq1Suite { items, seed }
}

fn round3(v: f64) -> f64 {
    let scale = 10f64.powf(3.0 - v.abs().log10().floor().max(0.0));
    (v * scale).round() / scale
}

fn question(item: &Rq1Item) -> String {
    format!(
        "Question: Given a GPU having a global memory with a max bandwidth of {} GB/s \
         and a peak performance of {} GFLOP/s, if a program executed with an Arithmetic \
         Intensity of {} FLOP/Byte and a performance of {} GFLOP/s, does the roofline \
         model consider the program as compute-bound or bandwidth-bound?",
        item.bandwidth_gbs, item.peak_gflops, item.ai, item.performance_gflops
    )
}

fn thought(item: &Rq1Item) -> String {
    let balance = item.peak_gflops / item.bandwidth_gbs;
    let relation = if item.ai < balance { "<" } else { ">=" };
    let region = match item.truth {
        Boundedness::Bandwidth => {
            "before the balance point, putting the program in the bandwidth-bound region"
        }
        Boundedness::Compute => {
            "past the balance point, putting the program in the compute-bound region"
        }
    };
    format!(
        "Thought: The max bandwidth is {} GB/s, and peak performance is {} GFLOP/s. \
         The balance point is at {} / {} = {:.2} FLOP/Byte. The program's Arithmetic \
         Intensity is {} FLOP/Byte. Because {} {} {:.2}, it is {}. The roofline model \
         would consider the program as {}-bound.",
        item.bandwidth_gbs,
        item.peak_gflops,
        item.peak_gflops,
        item.bandwidth_gbs,
        balance,
        item.ai,
        item.ai,
        relation,
        balance,
        region,
        item.truth.answer_token().to_lowercase()
    )
}

/// Render the RQ1 prompt for a query item: `shots` worked examples (drawn
/// from the suite itself, skipping the query), optionally with CoT
/// thought text, then the query question.
///
/// # Panics
/// Panics if the suite has too few items to supply the examples, or if
/// `shots < 2` (the paper always includes at least two examples to anchor
/// the output format).
pub fn render_rq1_prompt(suite: &Rq1Suite, query_idx: usize, shots: usize, cot: bool) -> String {
    assert!(
        shots >= 2,
        "the paper's RQ1 prompts use at least 2 examples"
    );
    assert!(
        suite.items.len() > shots,
        "suite too small: {} items for {shots} shots",
        suite.items.len()
    );
    let mut out = String::with_capacity(2048);
    out.push_str(
        "You are a GPU performance analysis expert. Answer each question with exactly \
         one word: Compute or Bandwidth.\n\n",
    );
    let mut used = 0;
    let mut idx = 0;
    while used < shots {
        if idx == query_idx {
            idx += 1;
            continue;
        }
        let ex = &suite.items[idx % suite.items.len()];
        out.push_str(&question(ex));
        out.push('\n');
        if cot {
            out.push_str(&thought(ex));
            out.push('\n');
        }
        out.push_str(&format!("Answer: {}\n\n", ex.truth.answer_token()));
        used += 1;
        idx += 1;
    }
    out.push_str(&question(&suite.items[query_idx]));
    out.push_str("\nAnswer:");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_two_items_per_roofline_and_balanced_truth() {
        let suite = generate_rq1_suite(240, 7);
        assert_eq!(suite.items.len(), 480);
        let cb = suite
            .items
            .iter()
            .filter(|i| i.truth == Boundedness::Compute)
            .count();
        assert_eq!(cb, 240);
    }

    #[test]
    fn truth_labels_are_consistent_with_the_roofline() {
        let suite = generate_rq1_suite(50, 3);
        for item in &suite.items {
            let roof = Roofline::new(item.peak_gflops, item.bandwidth_gbs);
            assert_eq!(
                roof.classify(item.ai),
                item.truth,
                "item {item:?} mislabeled"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_rq1_suite(20, 9), generate_rq1_suite(20, 9));
        assert_ne!(generate_rq1_suite(20, 9), generate_rq1_suite(20, 10));
    }

    #[test]
    fn margins_span_the_requested_range() {
        let suite = generate_rq1_suite(100, 5);
        let min = suite
            .items
            .iter()
            .map(|i| i.margin_decades)
            .fold(f64::MAX, f64::min);
        let max = suite
            .items
            .iter()
            .map(|i| i.margin_decades)
            .fold(0.0, f64::max);
        assert!(min >= 0.1 && max < 1.0);
        assert!(max - min > 0.5, "margins should spread out");
    }

    #[test]
    fn prompt_contains_examples_and_query() {
        let suite = generate_rq1_suite(10, 1);
        let prompt = render_rq1_prompt(&suite, 5, 4, false);
        assert_eq!(prompt.matches("Question:").count(), 5); // 4 shots + query
        assert_eq!(prompt.matches("Answer:").count(), 5);
        assert!(!prompt.contains("Thought:"));
        assert!(prompt.trim_end().ends_with("Answer:"));
    }

    #[test]
    fn cot_prompt_contains_thoughts_with_balance_points() {
        let suite = generate_rq1_suite(10, 1);
        let prompt = render_rq1_prompt(&suite, 0, 2, true);
        assert_eq!(prompt.matches("Thought:").count(), 2);
        assert!(prompt.contains("balance point"));
    }

    #[test]
    fn query_item_is_never_among_examples() {
        let suite = generate_rq1_suite(5, 2);
        let query = &suite.items[3];
        let prompt = render_rq1_prompt(&suite, 3, 8, false);
        // The query question appears exactly once.
        assert_eq!(prompt.matches(&question(query)).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 examples")]
    fn single_shot_prompts_are_rejected() {
        let suite = generate_rq1_suite(5, 2);
        render_rq1_prompt(&suite, 0, 1, false);
    }

    #[test]
    fn paper_worked_example_classifies_bandwidth() {
        // Fig. 3's example: bw 45.9, peak 52.22, AI 0.6 -> Bandwidth.
        let roof = Roofline::new(52.22, 45.9);
        assert_eq!(roof.classify(0.6), Boundedness::Bandwidth);
    }
}
