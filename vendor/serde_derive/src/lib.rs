//! Vendored minimal `#[derive(Serialize, Deserialize)]` for the vendored
//! serde stand-in. Implemented directly on `proc_macro` token streams (no
//! syn/quote in the offline build environment).
//!
//! Supported shapes — exactly what this workspace uses:
//! * structs with named fields,
//! * enums with unit, tuple, and struct variants (externally tagged),
//! * `#[serde(default)]` on named fields: a missing key deserializes via
//!   `Default::default()` instead of erroring, so extended schemas keep
//!   reading pre-extension JSON.
//!
//! Generics, tuple structs, and other `#[serde(...)]` attributes are not
//! supported; unrecognized attributes are skipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Field {
    name: String,
    /// Marked `#[serde(default)]`: a missing key falls back to
    /// `Default::default()` on deserialize.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic type `{name}` is not supported")
        }
        other => panic!(
            "serde_derive: `{name}`: expected braced body (tuple/unit structs unsupported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Whether an attribute's `[...]` stream spells `serde(default)`.
fn attr_is_serde_default(attr: TokenStream) -> bool {
    let mut toks = attr.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Parse `attr* vis? name: Type,` sequences, returning the fields.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility, noting `#[serde(default)]`.
        let mut default = false;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        default |= attr_is_serde_default(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after `{field}`, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        // Parens/brackets/braces arrive as single Group tokens, so only `<>`
        // nesting needs explicit tracking.
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
                None => break,
            }
        }
        fields.push(Field {
            name: field,
            default,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_slots(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Count comma-separated type slots at angle-depth 0 (tuple variant arity).
fn count_tuple_slots(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut slots = 0usize;
    let mut saw_tokens = false;
    let mut slot_has_tokens = false;
    for tok in stream {
        saw_tokens = true;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if slot_has_tokens {
                    slots += 1;
                    slot_has_tokens = false;
                }
                continue;
            }
            _ => {}
        }
        slot_has_tokens = true;
    }
    if slot_has_tokens {
        slots += 1;
    }
    let _ = saw_tokens;
    slots
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            body.push_str("let mut m = ::serde::value::Map::new();\n");
            for f in fields {
                let f = &f.name;
                let _ = writeln!(
                    body,
                    "m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));"
                );
            }
            body.push_str("::serde::value::Value::Object(m)");
            let _ = write!(
                out,
                "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vn} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vn}(f0) => ::serde::value::Value::tagged(\
                             \"{vn}\", ::serde::Serialize::to_value(f0)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            arms,
                            "{name}::{vn}({}) => ::serde::value::Value::tagged(\
                             \"{vn}\", ::serde::value::Value::Array(vec![{}])),",
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            let f = &f.name;
                            let _ = writeln!(
                                inserts,
                                "m.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));"
                            );
                        }
                        let _ = writeln!(
                            arms,
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut m = ::serde::value::Map::new();\n{inserts}\
                             ::serde::value::Value::tagged(\"{vn}\", \
                             ::serde::value::Value::Object(m))\n}}"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n\
                 impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            );
        }
    }
    out.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut out = String::new();
    match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let absent = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!(
                        "return Err(::serde::Error::missing(\"{name}\", \"{f}\"))",
                        f = f.name
                    )
                };
                let f = &f.name;
                let _ = writeln!(
                    inits,
                    "{f}: match m.get(\"{f}\") {{\n\
                     Some(x) => ::serde::Deserialize::from_value(x)\
                     .map_err(|e| e.at(\"{f}\"))?,\n\
                     None => {absent},\n}},"
                );
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::value::Value::Object(m) => Ok({name} {{\n{inits}\n}}),\n\
                 _ => Err(::serde::Error::expected(\"object\", \"{name}\")),\n\
                 }}\n}}\n}}\n"
            );
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" => ::serde::Deserialize::from_value(inner)\
                             .map({name}::{vn}).map_err(|e| e.at(\"{vn}\")),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(&a[{i}])\
                                     .map_err(|e| e.at(\"{vn}\"))?"
                                )
                            })
                            .collect();
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" => match inner {{\n\
                             ::serde::value::Value::Array(a) if a.len() == {n} => \
                             Ok({name}::{vn}({})),\n\
                             _ => Err(::serde::Error::expected(\
                             \"{n}-element array\", \"{name}::{vn}\")),\n}},",
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let absent = if f.default {
                                "::std::default::Default::default()".to_string()
                            } else {
                                format!(
                                    "return Err(::serde::Error::missing(\
                                     \"{name}::{vn}\", \"{f}\"))",
                                    f = f.name
                                )
                            };
                            let f = &f.name;
                            let _ = writeln!(
                                inits,
                                "{f}: match fm.get(\"{f}\") {{\n\
                                 Some(x) => ::serde::Deserialize::from_value(x)\
                                 .map_err(|e| e.at(\"{f}\"))?,\n\
                                 None => {absent},\n}},"
                            );
                        }
                        let _ = writeln!(
                            data_arms,
                            "\"{vn}\" => match inner {{\n\
                             ::serde::value::Value::Object(fm) => \
                             Ok({name}::{vn} {{\n{inits}\n}}),\n\
                             _ => Err(::serde::Error::expected(\
                             \"object\", \"{name}::{vn}\")),\n}},"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "#[automatically_derived]\n#[allow(warnings, clippy::all)]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::value::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::value::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().unwrap();\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::expected(\"variant\", \"{name}\")),\n\
                 }}\n}}\n}}\n"
            );
        }
    }
    out.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
