//! Vendored minimal stand-in for `rayon`: slice-parallel iteration with
//! real threads (`std::thread::scope`), covering the adapter chains this
//! workspace uses: `par_iter().map(..).collect()`, `.enumerate().map(..)`,
//! `.reduce(..)`, `.for_each(..)`, and `.sum()`.
//!
//! Items are partitioned into contiguous chunks, one per worker; results
//! are reassembled in input order, so output is deterministic regardless
//! of scheduling.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelSlice};
}

/// Worker-thread budget: `RAYON_NUM_THREADS` when set (real rayon honors
/// the same variable), otherwise the available parallelism.
///
/// Unlike real rayon — which reads the variable once at global-pool
/// initialisation — this stand-in re-reads it per call, so tests can
/// toggle serial vs parallel execution in-process.
fn thread_budget() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Number of worker threads: the thread budget, capped by length.
fn workers(len: usize) -> usize {
    thread_budget().min(len).max(1)
}

/// Run `f(index, &item)` over the slice on a scoped thread team and return
/// results in input order.
fn run_indexed<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let nworkers = workers(n);
    if nworkers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = n.div_ceil(nworkers);
    let mut pieces: Vec<Vec<R>> = Vec::with_capacity(nworkers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, part)| {
                let f = &f;
                scope.spawn(move || {
                    let base = w * chunk;
                    part.iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            pieces.push(h.join().expect("rayon worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in pieces {
        out.extend(p);
    }
    out
}

/// Entry point: `.par_iter()` on slices and anything that derefs to one.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Sync + 'a;

    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    /// Parallel for-each.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_indexed(self.items, |_, t| f(t));
    }
}

/// `map` stage over plain items.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        run_indexed(self.items, |_, t| f(t)).into_iter().collect()
    }

    /// Execute and fold with `op` starting from `identity()`.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> R
    where
        Id: Fn() -> R,
        Op: Fn(R, R) -> R,
    {
        let f = self.f;
        run_indexed(self.items, |_, t| f(t))
            .into_iter()
            .fold(identity(), op)
    }

    /// Execute and sum.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        let f = self.f;
        run_indexed(self.items, |_, t| f(t)).into_iter().sum()
    }
}

/// `enumerate` stage.
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    /// Parallel map over `(index, &item)`.
    pub fn map<R, F>(self, f: F) -> ParEnumMap<'a, T, F>
    where
        F: Fn((usize, &'a T)) -> R + Sync,
        R: Send,
    {
        ParEnumMap {
            items: self.items,
            f,
        }
    }
}

/// `map` stage over `(index, &item)` pairs.
pub struct ParEnumMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParEnumMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'a T)) -> R + Sync,
{
    /// Execute and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        run_indexed(self.items, |i, t| f((i, t)))
            .into_iter()
            .collect()
    }

    /// Execute and fold with `op` starting from `identity()`.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> R
    where
        Id: Fn() -> R,
        Op: Fn(R, R) -> R,
    {
        let f = self.f;
        run_indexed(self.items, |i, t| f((i, t)))
            .into_iter()
            .fold(identity(), op)
    }
}

/// The worker-thread count rayon would use (real rayon API); honors
/// `RAYON_NUM_THREADS`.
pub fn current_num_threads() -> usize {
    thread_budget()
}

/// Parallel iteration over fixed-size sub-slices, mirroring rayon's
/// `ParallelSlice::par_chunks` so callers stay source-compatible with the
/// real crate.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator over contiguous chunks of `chunk_size` items
    /// (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk_size must be > 0");
        ParChunks {
            chunks: self.chunks(chunk_size).collect(),
        }
    }
}

/// Borrowed parallel iterator over sub-slices.
pub struct ParChunks<'a, T> {
    chunks: Vec<&'a [T]>,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Parallel map over each chunk.
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        F: Fn(&'a [T]) -> R + Sync,
        R: Send,
    {
        ParChunksMap {
            chunks: self.chunks,
            f,
        }
    }
}

/// `map` stage over sub-slices.
pub struct ParChunksMap<'a, T, F> {
    chunks: Vec<&'a [T]>,
    f: F,
}

impl<'a, T, R, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    /// Execute and collect per-chunk results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        run_indexed(&self.chunks, |_, part| f(part))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_sees_correct_indices() {
        let v = vec!["a"; 5000];
        let idx: Vec<usize> = v.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, (0..5000).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_folds_everything() {
        let v: Vec<u64> = (1..=1000).collect();
        let sum = v
            .par_iter()
            .map(|&x| (x, 1u64))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(sum, (500_500, 1000));
    }

    #[test]
    fn chunk_map_covers_all_items() {
        let v: Vec<u32> = (0..997).collect();
        let partials: Vec<u64> = v
            .par_chunks(100)
            .map(|part| part.iter().map(|&x| x as u64).sum::<u64>())
            .collect();
        assert_eq!(partials.len(), 10);
        assert_eq!(partials.iter().sum::<u64>(), (0..997u64).sum::<u64>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
