//! Vendored minimal stand-in for `parking_lot`: wraps std's sync
//! primitives with parking_lot's panic-free, guard-returning API.

/// A mutex whose `lock` never returns a poisoned error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (poisoning is ignored, like parking_lot).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new RwLock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
