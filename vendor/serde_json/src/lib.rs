//! Vendored minimal stand-in for `serde_json`: a JSON printer and a
//! recursive-descent parser over the vendored serde `Value` tree.

pub use serde::value::{Map, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent, like serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Serialize a value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is shortest-exact: round-trips.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null"); // serde_json's behavior for non-finite
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Handle surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        for src in [
            "null",
            "true",
            "0",
            "-17",
            "3.25",
            "\"hi \\\"there\\\"\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse_value(src).unwrap();
            let printed = {
                let mut s = String::new();
                write_value(&v, &mut s, None, 0);
                s
            };
            let v2 = parse_value(&printed).unwrap();
            assert_eq!(v, v2, "{src}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 6.02e23, 1e-300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f, back);
        }
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let s = "λ → ∑ 中文 \n\t\"quoted\"";
        let json = to_string(&String::from(s)).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(parse_value("{\"a\":}").is_err());
        assert!(parse_value("[1,]").is_err());
    }
}
