//! Value-generation strategies.

use rand::Rng;

use crate::test_runner::TestRng;

/// Something that can generate sampled values.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

/// Uniform choice from a fixed list (`prop::sample::select`).
pub struct Select<T> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// Vector of values from an element strategy (`prop::collection::vec`).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// String-pattern strategies: a small regex-shaped subset.
///
/// Supported syntax (everything this workspace's properties use):
/// * `[...]` character classes with ranges (`a-z`), literals, and the
///   escapes `\n`, `\r`, `\t`, `\\`, `\]`, `\-`,
/// * `\PC` — "any non-control character", including multibyte unicode,
/// * `{lo,hi}` repetition on the preceding atom,
/// * bare literal characters.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let reps = rng.gen_range(*lo..=*hi);
            for _ in 0..reps {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

enum Atom {
    /// Explicit character set.
    Class(Vec<char>),
    /// Any non-control character (ASCII-weighted, with unicode tail).
    AnyPrintable,
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Class(chars) => chars[rng.gen_range(0..chars.len())],
            Atom::AnyPrintable => {
                if rng.gen_bool(0.8) {
                    // Printable ASCII.
                    char::from(rng.gen_range(0x20u8..0x7F))
                } else {
                    // Arbitrary non-control unicode scalar.
                    loop {
                        let cp = rng.gen_range(0x20u32..0x11_0000);
                        if let Some(c) = char::from_u32(cp) {
                            if !c.is_control() {
                                return c;
                            }
                        }
                    }
                }
            }
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        // \PC / \pC — treat as "any printable".
                        i += 2; // skip the category letter
                        Atom::AnyPrintable
                    }
                    Some(&c) => {
                        i += 1;
                        Atom::Class(vec![unescape(c)])
                    }
                    None => panic!("pattern ends with bare backslash: {pat:?}"),
                }
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Optional {lo,hi} repetition.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{}} in pattern {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(chars[i])
        } else {
            chars[i]
        };
        // Range `a-z`?
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&n| n != ']') {
            let mut end = chars[i + 2];
            let mut consumed = 3;
            if end == '\\' {
                end = unescape(chars[i + 3]);
                consumed = 4;
            }
            for cp in (c as u32)..=(end as u32) {
                if let Some(ch) = char::from_u32(cp) {
                    set.push(ch);
                }
            }
            i += consumed;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unclosed character class");
    (set, i + 1) // skip ']'
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ascii_class_pattern_stays_in_class() {
        let mut rng = rng_for("ascii");
        for _ in 0..50 {
            let s = "[ -~\n\t]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40 * 4);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn printable_pattern_has_no_controls() {
        let mut rng = rng_for("printable");
        for _ in 0..50 {
            let s = "\\PC{0,80}".generate(&mut rng);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn lowercase_range_pattern() {
        let mut rng = rng_for("lower");
        for _ in 0..50 {
            let s = "[a-z ]{0,80}".generate(&mut rng);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn numeric_ranges_in_bounds() {
        let mut rng = rng_for("nums");
        for _ in 0..100 {
            let x = (1.0f64..1e5).generate(&mut rng);
            assert!((1.0..1e5).contains(&x));
            let n = (1u64..1000).generate(&mut rng);
            assert!((1..1000).contains(&n));
        }
    }

    #[test]
    fn vec_and_select_strategies() {
        use crate::prop;
        let mut rng = rng_for("vecsel");
        let v = prop::collection::vec(0usize..100, 1..20).generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 20);
        assert!(v.iter().all(|&x| x < 100));
        let s = prop::sample::select(vec![1u64, 2, 4]).generate(&mut rng);
        assert!([1, 2, 4].contains(&s));
    }
}
