//! Vendored minimal property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro over
//! `arg in strategy` bindings, `prop_assert!` / `prop_assert_eq!`, range
//! and regex-pattern strategies, `prop::collection::vec`, and
//! `prop::sample::select`.
//!
//! Each property runs `PROPTEST_CASES` (default 48) deterministic cases:
//! the RNG is seeded from the test name, so failures reproduce exactly.
//! Shrinking is not implemented — failing inputs are printed instead.

pub mod strategy;

pub use strategy::Strategy;

/// Deterministic per-test RNG.
pub mod test_runner {
    use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng as TestRng;

    /// Seed an RNG from a test name (FNV-1a), so each property gets a
    /// stable, distinct stream.
    pub fn rng_for(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Number of cases per property (`PROPTEST_CASES` env override).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48)
    }
}

/// Strategy constructors, mirroring proptest's `prop::` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// A vector whose length is drawn from `size` and whose elements
        /// are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniformly select one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty options");
            Select { options }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (panics with the failing-case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running many sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            let cases = $crate::test_runner::cases();
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest: property `{}` failed at case {}/{} with inputs:",
                        stringify!($name), case + 1, cases
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)*
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}
