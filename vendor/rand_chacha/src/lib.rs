//! Vendored ChaCha8 RNG: a real 8-round ChaCha keystream generator
//! implementing the vendored `rand` traits. Deterministic across platforms.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (8) — fixed after seeding.
    key: [u32; 8],
    /// 64-bit block counter + 64-bit nonce (always 0 here).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next word index into `block`; 16 means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn words_look_uniform() {
        // Crude equidistribution check: bit population over many words.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let expected = 1000 * 32;
        assert!((ones as i64 - expected as i64).abs() < 2_000, "{ones}");
    }

    #[test]
    fn matches_chacha_structure() {
        // Different counters give different blocks (keystream advances).
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
