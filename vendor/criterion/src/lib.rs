//! Vendored minimal benchmark harness exposing the subset of the
//! `criterion` API this workspace uses: `Criterion`, `benchmark_group`
//! (`throughput`, `sample_size`, `bench_function`, `finish`), `Bencher`
//! (`iter`, `iter_batched`), `Throughput`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a short warm-up sizes the per-sample iteration
//! count so one sample takes ~`SAMPLE_TARGET`; `sample_size` samples are
//! timed and the median per-iteration time (plus throughput, when set) is
//! printed. Honors positional CLI args as substring filters, so
//! `cargo bench -p pce-bench --bench tokenizer -- train` runs only
//! matching benchmarks. `PCE_BENCH_FAST=1` shrinks the workload for CI
//! smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_TARGET: Duration = Duration::from_millis(150);
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
    fast: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        let fast = std::env::var("PCE_BENCH_FAST").is_ok_and(|v| v != "0");
        Criterion { filters, fast }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, None, 10, self.fast, &self.filters, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.throughput,
            self.sample_size,
            self.criterion.fast,
            &self.criterion.filters,
            f,
        );
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Iterations to run this sample.
    iters: u64,
    /// Accumulated measured time for this sample.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    fast: bool,
    filters: &[String],
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !filters.is_empty() && !filters.iter().any(|pat| id.contains(pat.as_str())) {
        return;
    }

    // Warm-up: find an iteration count whose sample takes ~SAMPLE_TARGET.
    let mut iters = 1u64;
    let warmup_deadline = if fast {
        WARMUP_TARGET / 10
    } else {
        WARMUP_TARGET
    };
    let warmup_start = Instant::now();
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b
            .elapsed
            .checked_div(iters as u32)
            .unwrap_or(Duration::ZERO);
        if warmup_start.elapsed() >= warmup_deadline || per_iter >= warmup_deadline {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let target = if fast {
        SAMPLE_TARGET / 10
    } else {
        SAMPLE_TARGET
    };
    let sample_iters = if per_iter.is_zero() {
        iters
    } else {
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
    };
    let samples = if fast {
        sample_size.min(5)
    } else {
        sample_size
    };

    // Measurement.
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / sample_iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let best = per_iter_ns[0];
    let worst = *per_iter_ns.last().unwrap();

    let mut line = format!(
        "{id:<44} time: [{} {} {}]",
        fmt_time(best),
        fmt_time(median),
        fmt_time(worst)
    );
    if let Some(t) = throughput {
        let per_sec = 1e9 / median;
        match t {
            Throughput::Bytes(n) => {
                let mib = n as f64 * per_sec / (1024.0 * 1024.0);
                line.push_str(&format!("  thrpt: {mib:.1} MiB/s"));
            }
            Throughput::Elements(n) => {
                let elems = n as f64 * per_sec;
                line.push_str(&format!("  thrpt: {elems:.1} elem/s"));
            }
        }
    }
    println!("{line}");
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Build a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = "Generated benchmark group runner."]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Build `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            filters: Vec::new(),
            fast: true,
        };
        c.bench_function("smoke/noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_function("vec_push", |b| {
            b.iter_batched(
                Vec::<u32>::new,
                |mut v| {
                    v.push(1);
                    v
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn filters_skip_non_matching() {
        let c = Criterion {
            filters: vec!["nomatch".into()],
            fast: true,
        };
        // Closure would panic if run; filtering must skip it.
        let mut c = c;
        c.bench_function("other/name", |_b| panic!("should not run"));
    }
}
