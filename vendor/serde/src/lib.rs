//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment is fully offline, so the workspace carries this
//! tiny API-compatible subset instead of the crates-io dependency. The
//! data model is deliberately simplified: `Serialize` lowers a value to a
//! [`value::Value`] tree and `Deserialize` lifts it back. The companion
//! `serde_derive` proc-macro generates both impls for structs with named
//! fields and for enums with unit / tuple / struct variants (the shapes
//! this workspace uses), matching serde's externally-tagged enum layout.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Value};

/// Deserialization error: a message plus a reverse field path.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    path: Vec<String>,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
            path: Vec::new(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error::custom(format!("expected {what} while deserializing {ty}"))
    }

    /// A missing-field error.
    pub fn missing(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` of {ty}"))
    }

    /// Annotate the error with the field it occurred under.
    pub fn at(mut self, field: &str) -> Self {
        self.path.push(field.to_string());
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            let mut path: Vec<&str> = self.path.iter().map(|s| s.as_str()).collect();
            path.reverse();
            write!(f, "{}: {}", path.join("."), self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// Lower `self` into the generic [`Value`] tree.
pub trait Serialize {
    /// Convert to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Lift `Self` back out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == 2 => Ok((A::from_value(&a[0])?, B::from_value(&a[1])?)),
            _ => Err(Error::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == 3 => Ok((
                A::from_value(&a[0])?,
                B::from_value(&a[1])?,
                C::from_value(&a[2])?,
            )),
            _ => Err(Error::expected("3-element array", "tuple")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                let mut out = std::collections::BTreeMap::new();
                for (k, v) in m {
                    out.insert(k.clone(), V::from_value(v).map_err(|e| e.at(k))?);
                }
                Ok(out)
            }
            _ => Err(Error::expected("object", "BTreeMap")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
