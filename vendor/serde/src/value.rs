//! The generic JSON-shaped value tree that serialization lowers into.

/// Object map. BTreeMap gives deterministic (alphabetical) key order,
//  matching serde_json's default (non-preserve-order) behavior.
pub type Map = std::collections::BTreeMap<String, Value>;

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Signed integer (used for negatives).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// A single-entry object `{tag: inner}` — serde's externally-tagged
    /// enum representation.
    pub fn tagged(tag: &str, inner: Value) -> Value {
        let mut m = Map::new();
        m.insert(tag.to_string(), inner);
        Value::Object(m)
    }

    /// Borrow as object map.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Coerce to u64 (accepts non-negative I64 and integral F64).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Coerce to i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Coerce to f64 (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(f) => Some(f),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Borrow as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}
