//! Sequence utilities: shuffle and choose over slices, matching
//! rand 0.8.5's draw pattern (u32-wide index sampling when the bound
//! fits, one draw per position, high-to-low Fisher–Yates).

use crate::{Rng, RngCore};

/// Uniform index below `ubound`, via a u32 draw when possible (this is
/// rand 0.8's `gen_index`, which keeps shuffles stream-compatible).
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut Lcg(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn choose_returns_member() {
        let v = [1, 2, 3];
        let mut rng = Lcg(9);
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
