//! Vendored minimal stand-in for the `rand` crate, faithful to the
//! rand 0.8.5 *sampling semantics* so that seeded streams match a build
//! against the real crate:
//!
//! * `SeedableRng::seed_from_u64` expands with PCG32 (rand_core 0.6),
//! * integer `gen_range` uses widening-multiply + zone rejection at the
//!   same word width as upstream (u32-wide for ≤32-bit types, u64-wide
//!   for 64-bit types),
//! * float `gen_range` maps `u64 >> 12` into `[1, 2)` and scales,
//! * `gen_bool` compares one `u64` draw against `(p · 2⁶⁴)`,
//! * `shuffle`/`choose` index via a u32-wide draw when the bound fits.
//!
//! Only the API surface this workspace uses is provided.

pub mod seq;

/// The core RNG interface: a stream of uniform random words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, including the convenience `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding with PCG32 exactly as
    /// rand_core 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        if p == 1.0 {
            // rand 0.8's Bernoulli ALWAYS_TRUE path draws nothing, so the
            // stream must not advance here either.
            return true;
        }
        // rand 0.8: threshold = p * 2^64, one u64 draw.
        let p_int = (p * 2f64.powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Widening multiply helpers matching rand's WideningMultiply (hi, lo).
#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = a as u64 * b as u64;
    ((t >> 32) as u32, t as u32)
}

#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = a as u128 * b as u128;
    ((t >> 64) as u64, t as u64)
}

/// Sample uniformly from `[0, range)` with a u32-wide draw (rand 0.8's
/// `sample_single` zone-rejection; `range == 0` means the full domain).
#[inline]
fn sample_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    if range == 0 {
        return rng.next_u32();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let (hi, lo) = wmul32(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

/// Sample uniformly from `[0, range)` with a u64-wide draw.
#[inline]
fn sample_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    if range == 0 {
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul64(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

/// Small-int (≤16-bit) path: modulo-derived zone over a u32 draw,
/// mirroring rand's dedicated i8/i16 branch.
#[inline]
fn sample_small<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    debug_assert!(range > 0);
    let ints_to_reject = (u32::MAX - range + 1) % range;
    let zone = u32::MAX - ints_to_reject;
    loop {
        let v = rng.next_u32();
        let (hi, lo) = wmul32(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $via:ident, $wide:ty);* $(;)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = self.end.wrapping_sub(self.start) as $wide;
                let draw = $via(rng, range);
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Wraps to 0 on the full domain, which $via treats as
                // "any word" — matching rand's inclusive sampler.
                let range = (end.wrapping_sub(start) as $wide).wrapping_add(1);
                let draw = $via(rng, range);
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_int_range!(
    u8 => sample_small, u32;
    u16 => sample_small, u32;
    i8 => sample_small, u32;
    i16 => sample_small, u32;
    u32 => sample_u32, u32;
    i32 => sample_u32, u32;
    u64 => sample_u64, u64;
    i64 => sample_u64, u64;
    usize => sample_u64, u64;
    isize => sample_u64, u64;
);

// Only f64 gets a float impl: a second float impl (f32) breaks `{float}`
// literal inference at call sites like `gen_range(0.1..1.0)` that
// constrain the result only through projections (`Neg::Output`).
impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        loop {
            // rand 0.8: 52 fraction bits into [1, 2), then scale.
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
            let w: u8 = rng.gen_range(0u8..=255);
            let _ = w;
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x = rng.gen_range(1.5f64..9.25);
            assert!((1.5..9.25).contains(&x));
        }
    }

    #[test]
    fn int_sampling_is_roughly_uniform() {
        let mut rng = Lcg(3);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10) as usize] += 1;
        }
        assert!(
            buckets.iter().all(|&b| (800..1200).contains(&b)),
            "{buckets:?}"
        );
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = Lcg(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn seed_expansion_matches_pcg32_reference() {
        // Reference: rand_core 0.6 seed_from_u64(0) for a 32-byte seed.
        struct Probe([u8; 32]);
        impl SeedableRng for Probe {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Probe(seed)
            }
        }
        let a = Probe::seed_from_u64(0).0;
        let b = Probe::seed_from_u64(0).0;
        assert_eq!(a, b);
        assert_ne!(a, Probe::seed_from_u64(1).0);
        // PCG32 with state advanced once from 0 yields a fixed first word.
        let mut state = 0u64
            .wrapping_mul(6364136223846793005)
            .wrapping_add(11634580027462260723);
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        let first = xorshifted.rotate_right(rot);
        assert_eq!(&a[..4], &first.to_le_bytes());
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(11634580027462260723);
        let _ = state;
    }
}
