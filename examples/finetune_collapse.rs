//! RQ4 in miniature: fine-tune the surrogate head on the training split
//! and watch it collapse to a single answer on validation (§3.7) — then
//! run the counterfactual with a gentler schedule to see why the paper
//! blames dataset size.
//!
//! Run with: `cargo run --release --example finetune_collapse`

use parallel_code_estimation::core::experiments::run_rq4;
use parallel_code_estimation::core::report::render_rq4;
use parallel_code_estimation::core::study::{Study, StudyData};
use parallel_code_estimation::llm::{FineTuneConfig, FineTuneJob};
use parallel_code_estimation::prompt::ShotStyle;

use parallel_code_estimation::core::experiments::rq23::prompt_for_sample;

fn main() {
    let study = Study::smoke();
    let data = StudyData::build(&study).expect("study builds");

    // The paper's configuration: 2 epochs on the 80% split.
    println!("{}", render_rq4(&run_rq4(&study, &data.split)));

    // Counterfactual: same data, gentle schedule — the head no longer
    // saturates, but with this little data it still cannot generalize.
    let train: Vec<_> = data
        .split
        .train
        .samples
        .iter()
        .map(|s| (prompt_for_sample(&study, s, ShotStyle::ZeroShot), s.label))
        .collect();
    // A sane schedule gentles *every* pathological knob, not just the
    // learning rate: the default answer-prior rate and weight decay are
    // the collapse drivers.
    let gentle = FineTuneJob::new(
        train,
        FineTuneConfig {
            learning_rate: 0.2,
            epochs: 8,
            answer_prior_rate: 1.0,
            weight_decay: 0.0,
            ..Default::default()
        },
    )
    .run();
    let correct = data
        .split
        .validation
        .samples
        .iter()
        .filter(|s| gentle.predict(&prompt_for_sample(&study, s, ShotStyle::ZeroShot)) == s.label)
        .count();
    println!(
        "gentle schedule (lr 0.2, 8 epochs): validation accuracy {:.1}% — \
         better-behaved, still no generalization; the bottleneck is data, \
         exactly as §3.7 concludes.",
        100.0 * correct as f64 / data.split.validation.len() as f64
    );
}
