//! Cross-hardware sweep: run the smoke-scale experiment matrix over four
//! GPUs spanning three architectures, then show which kernels flip
//! ground-truth boundedness and how zero-shot accuracy tracks the flips.
//!
//! Run with: `cargo run --release --example suite_sweep`

use parallel_code_estimation::core::suite::{run_suite, Suite};
use parallel_code_estimation::roofline::{HardwareSpec, OpClass};

fn main() {
    let suite = Suite::smoke_with_specs(vec![
        HardwareSpec::rtx_3080(),
        HardwareSpec::a100(),
        HardwareSpec::rtx_4090(),
        HardwareSpec::mi250x(),
    ]);
    println!(
        "sweeping {} hardware specs × 9 models (smoke scale)...\n",
        suite.specs.len()
    );
    let outcome = run_suite(&suite);

    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "GPU", "SP ridge", "DP ridge", "INT ridge", "dataset", "best RQ2"
    );
    for s in &outcome.specs {
        let best = s
            .table
            .rows
            .iter()
            .map(|r| r.rq2.accuracy)
            .fold(f64::MIN, f64::max);
        println!(
            "{:<28} {:>9.2} {:>9.2} {:>9.2} {:>8} {:>9.2}%",
            s.spec.name,
            s.spec.ridge_point(OpClass::Sp),
            s.spec.ridge_point(OpClass::Dp),
            s.spec.ridge_point(OpClass::Int),
            s.funnel.final_size,
            best,
        );
    }

    let flips = &outcome.flips;
    println!(
        "\n{} of {} corpus kernels change ground-truth class somewhere in the matrix.",
        flips.flipping,
        flips.kernels.len()
    );
    for (name, n) in flips
        .spec_names
        .iter()
        .zip(&flips.flips_vs_reference)
        .skip(1)
    {
        println!("  {name}: {n} kernels relabeled vs {}", flips.spec_names[0]);
    }

    // A few concrete flippers, with their per-spec labels.
    println!("\nexample flipping kernels:");
    for k in flips.kernels.iter().filter(|k| k.flips()).take(5) {
        let labels: Vec<&str> = k.labels.iter().map(|l| l.short()).collect();
        println!("  {:<26} {}", k.id, labels.join(" → "));
    }

    if let (Some(on_flip), Some(on_stable)) = (flips.accuracy_on_flipping, flips.accuracy_on_stable)
    {
        println!(
            "\npooled zero-shot accuracy: {on_flip:.1}% on flipping kernels vs \
             {on_stable:.1}% on stable ones — hardware-sensitive kernels are \
             exactly where source-only prediction is hardest."
        );
    }
}
