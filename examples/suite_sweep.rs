//! Cross-hardware sweep: run the smoke-scale experiment matrix over a
//! (GPU × CPU) preset grid, then show — per language — which kernels flip
//! ground-truth boundedness along their own hardware axis and how
//! zero-shot accuracy tracks the flips.
//!
//! Run with: `cargo run --release --example suite_sweep`

use parallel_code_estimation::core::suite::{run_suite, Suite};
use parallel_code_estimation::roofline::{HardwareSpec, OpClass};

fn main() {
    let suite = Suite::smoke_with_matrix(
        vec![
            HardwareSpec::rtx_3080(),
            HardwareSpec::rtx_4090(),
            HardwareSpec::mi250x(),
        ],
        vec![HardwareSpec::epyc_9654(), HardwareSpec::xeon_8480p()],
    );
    println!(
        "sweeping {} GPU x {} CPU specs ({} cells) × 9 models (smoke scale)...\n",
        suite.specs.len(),
        suite.cpu_specs.len(),
        suite.cells().len()
    );
    let outcome = run_suite(&suite).expect("smoke matrix axes are valid");

    println!(
        "{:<28} {:<28} {:>9} {:>9} {:>8} {:>10}",
        "GPU", "CPU", "SP ridge", "CPU SP rg", "dataset", "best RQ2"
    );
    for s in outcome.completed() {
        let best = s
            .table
            .rows
            .iter()
            .map(|r| r.rq2.accuracy)
            .fold(f64::MIN, f64::max);
        println!(
            "{:<28} {:<28} {:>9.2} {:>9.2} {:>8} {:>9.2}%",
            s.spec.name,
            s.cpu_spec.name,
            s.spec.ridge_point(OpClass::Sp),
            s.cpu_spec.ridge_point(OpClass::Sp),
            s.funnel.final_size,
            best,
        );
    }

    for section in &outcome.flips.by_language {
        println!(
            "\n{} of {} {} kernels change ground-truth class across the {} axis.",
            section.flipping,
            section.kernels.len(),
            section.language,
            section.axis_class,
        );
        for (name, n) in section
            .spec_names
            .iter()
            .zip(&section.flips_vs_reference)
            .skip(1)
        {
            println!(
                "  {name}: {n} kernels relabeled vs {}",
                section.spec_names[0]
            );
        }

        // A few concrete flippers, with their per-spec labels.
        println!("example flipping {} kernels:", section.language);
        for k in section.kernels.iter().filter(|k| k.flips()).take(3) {
            let labels: Vec<&str> = k.labels.iter().map(|l| l.short()).collect();
            println!("  {:<26} {}", k.id, labels.join(" → "));
        }

        if let (Some(on_flip), Some(on_stable)) =
            (section.accuracy_on_flipping, section.accuracy_on_stable)
        {
            println!(
                "pooled zero-shot accuracy ({}): {on_flip:.1}% on flipping kernels vs \
                 {on_stable:.1}% on stable ones — hardware-sensitive kernels are \
                 exactly where source-only prediction is hardest.",
                section.language
            );
        }
    }
}
