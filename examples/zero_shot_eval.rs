//! A reduced-scale RQ2/RQ3 evaluation: build the dataset, run a reasoning
//! and a non-reasoning model in both prompt regimes, and test whether
//! few-shot examples change anything (McNemar, §3.6).
//!
//! Run with: `cargo run --release --example zero_shot_eval`

use parallel_code_estimation::core::experiments::run_classification;
use parallel_code_estimation::core::study::{Study, StudyData};
use parallel_code_estimation::llm::SurrogateEngine;
use parallel_code_estimation::metrics::mcnemar_test;
use parallel_code_estimation::prompt::ShotStyle;

fn main() {
    let study = Study::smoke();
    let data = StudyData::build(&study).expect("study builds");
    println!(
        "dataset: {} balanced samples ({} per language/class cell)\n",
        data.dataset.len(),
        data.report.per_combo
    );

    let engine = SurrogateEngine::new();
    for model in ["o3-mini-high", "gpt-4o-mini"] {
        let zero = run_classification(
            &study,
            &engine,
            model,
            &data.dataset.samples,
            ShotStyle::ZeroShot,
        );
        let few = run_classification(
            &study,
            &engine,
            model,
            &data.dataset.samples,
            ShotStyle::FewShot,
        );
        let mc = mcnemar_test(&zero.correct, &few.correct);
        println!("{model}:");
        println!("  zero-shot: {}", zero.metrics);
        println!("  few-shot:  {}", few.metrics);
        println!(
            "  McNemar RQ2 vs RQ3: p = {:.3} -> {}",
            mc.p_value,
            if mc.significant_at(0.05) {
                "different"
            } else {
                "no significant difference"
            }
        );
    }
    println!("\nsimulated API spend: ${:.2}", engine.meter().total_cost());
}
