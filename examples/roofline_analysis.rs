//! Performance-portability analysis: profile one kernel across several
//! GPUs and watch its roofline class flip with the hardware — the paper's
//! "Expanding Dataset" future-work scenario (§4).
//!
//! Run with: `cargo run --example roofline_analysis`

use parallel_code_estimation::gpu_sim::prelude::*;
use parallel_code_estimation::roofline::{classify_joint, HardwareSpec, OpClass};

fn main() {
    // A high-order double-precision stencil: past the DP balance point on
    // consumer silicon (1/64-rate DP pipes), comfortably bandwidth-bound
    // on HPC parts with full-rate DP.
    let kernel = KernelIr::builder("dp_stencil_ho")
        .buffer("in", 8, Extent::Param("n".into()))
        .buffer("out", 8, Extent::Param("n".into()))
        .ops((0..5).map(|_| Op::load("in", AccessPattern::Coalesced)))
        .ops((0..25).map(|_| Op::flop(Precision::F64)))
        .op(Op::store("out", AccessPattern::Coalesced))
        .build();
    let n = 16_000_000u64;
    let launch = LaunchConfig::linear(n, 256)
        .expect("valid launch")
        .with_param("n", n);

    println!("kernel: high-order (25-flop) DP stencil, n = {n}\n");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>10}",
        "GPU", "DP bal.", "DP AI", "runtime", "class"
    );
    for hw in HardwareSpec::presets() {
        let profile = Profiler::new(hw.clone()).profile(&kernel, &launch);
        let joint = classify_joint(&hw, &profile.counts);
        let ai = profile.counts.ai(OpClass::Dp);
        println!(
            "{:<28} {:>10.3} {:>10.3} {:>9.2} ms {:>10}",
            hw.name,
            hw.roofline(OpClass::Dp).balance_point(),
            ai,
            profile.runtime_s * 1e3,
            joint.label.short()
        );
    }

    println!(
        "\nThe same source code changes class across devices — why the paper \
         argues per-hardware labels are needed for generalizable prediction."
    );
}
