//! Quickstart: the whole study in miniature.
//!
//! Builds a small benchmark corpus, profiles one program on the simulated
//! RTX 3080, derives its ground-truth roofline label, then asks a
//! reasoning and a non-reasoning surrogate LLM to classify it from source
//! alone — the paper's core comparison, end to end.
//!
//! Run with: `cargo run --example quickstart`

use parallel_code_estimation::gpu_sim::Profiler;
use parallel_code_estimation::kernels::{build_corpus, CorpusConfig};
use parallel_code_estimation::llm::{ChatRequest, SurrogateEngine};
use parallel_code_estimation::prompt::{render_classify_prompt, ClassifyRequest, ShotStyle};
use parallel_code_estimation::roofline::{classify_joint, HardwareSpec};

fn main() {
    // 1. A small HeCBench-like corpus (deterministic, seeded).
    let corpus = build_corpus(&CorpusConfig {
        seed: 42,
        cuda_programs: 12,
        omp_programs: 6,
    })
    .expect("corpus builds");
    let program = &corpus[1];
    println!(
        "program {} ({} kernel '{}')",
        program.id, program.language, program.kernel_name
    );

    // 2. Profile it on the simulated RTX 3080 — the paper's ground truth.
    let hw = HardwareSpec::rtx_3080();
    let profile = Profiler::new(hw.clone()).profile(&program.ir, &program.launch);
    println!("{}", profile.report());

    // 3. The three-roofline joint label (§2.1).
    let joint = classify_joint(&hw, &profile.counts);
    println!(
        "ground truth: {} (CB classes: {:?})\n",
        joint.label,
        joint.compute_bound_classes()
    );

    // 4. Ask two surrogate LLMs, zero-shot, from source only (Fig. 4).
    let prompt = render_classify_prompt(
        &ClassifyRequest {
            language: program.language.label().to_string(),
            kernel_name: program.kernel_name.clone(),
            hardware: hw,
            geometry: program.launch.geometry_string(),
            args: program.args.clone(),
            source: program.source.clone(),
        },
        ShotStyle::ZeroShot,
    );
    let engine = SurrogateEngine::new();
    for model in ["o3-mini-high", "gpt-4o-mini"] {
        let resp = engine
            .complete(&ChatRequest::new(model, prompt.clone()))
            .expect("fault-free engine answers known models");
        println!(
            "{model:>14} answers: {:<10} (correct: {})",
            resp.text,
            resp.text == joint.label.answer_token()
        );
    }
    println!("\nsimulated API spend: ${:.4}", engine.meter().total_cost());
}
