//! Fuzz-style property tests for the prompt parsers and the static
//! analyzer: whatever bytes a (possibly fault-injected) completion hands
//! back, `parse_classify`, `parse_rq1`, and `Boundedness::parse` must
//! return a structured result — never panic — and whatever bytes a
//! `predict src=...` client sends, `lex`/`analyze`/`diagnose` must do
//! the same. Mutations mirror the chaos layer's fault kinds: truncation
//! at arbitrary char boundaries, random splices, and refusal text.

use proptest::prelude::*;

use parallel_code_estimation::fault::{corrupt_text, FaultKind, REFUSAL_TEXT};
use parallel_code_estimation::llm::parse::{parse_classify, parse_rq1};
use parallel_code_estimation::prompt::{
    generate_rq1_suite, render_classify_prompt, render_rq1_prompt, ClassifyRequest, ShotStyle,
};
use parallel_code_estimation::roofline::{Boundedness, HardwareSpec};
use parallel_code_estimation::static_analysis::{analyze, diagnose, lex, AnalyzeOptions};

/// A real Fig.-4 classification prompt to mutate.
fn classify_prompt() -> String {
    render_classify_prompt(
        &ClassifyRequest {
            language: "CUDA".to_string(),
            kernel_name: "saxpy_like".to_string(),
            hardware: HardwareSpec::rtx_3080(),
            geometry: "grid (128, 1, 1), block (256, 1, 1)".to_string(),
            args: vec!["n=1048576".to_string()],
            source: "__global__ void saxpy_like(float* y) { /* ... */ }".to_string(),
        },
        ShotStyle::ZeroShot,
    )
}

/// A real RQ1 prompt to mutate.
fn rq1_prompt() -> String {
    let suite = generate_rq1_suite(4, 0x51);
    render_rq1_prompt(&suite, 0, 2, false)
}

/// A real CUDA kernel (tree reduction with shared memory, barriers, and
/// a strided tail loop) to mutate for the static-analysis properties.
fn kernel_source() -> String {
    "__global__ void reduce_sum(long n, const float* in, float* out) {\n\
     \x20 __shared__ float buf[256];\n\
     \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
     \x20 buf[threadIdx.x] = (i < n) ? in[i] : 0; /* guarded load */\n\
     \x20 __syncthreads();\n\
     \x20 for (int s = 128; s > 0; s >>= 1) {\n\
     \x20   if (threadIdx.x < s) buf[threadIdx.x] += buf[threadIdx.x + s];\n\
     \x20   __syncthreads();\n\
     \x20 }\n\
     \x20 if (threadIdx.x == 0) out[blockIdx.x] = buf[0];\n}\n"
        .to_string()
}

/// Truncate at the nearest char boundary at or below `at`.
fn truncate_clean(s: &str, at: usize) -> &str {
    let mut cut = at.min(s.len());
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    &s[..cut]
}

proptest! {
    #[test]
    fn parsers_never_panic_on_arbitrary_strings(text in "\\PC{0,300}") {
        // Any outcome is acceptable; getting one without unwinding is the
        // property under test.
        let _ = parse_classify(&text);
        let _ = parse_rq1(&text);
        let _ = Boundedness::parse(&text);
    }

    #[test]
    fn parsers_never_panic_on_truncated_real_prompts(at in 0usize..6000) {
        let classify = classify_prompt();
        let rq1 = rq1_prompt();
        let _ = parse_classify(truncate_clean(&classify, at));
        let _ = parse_rq1(truncate_clean(&rq1, at));
    }

    #[test]
    fn parsers_never_panic_on_spliced_real_prompts(
        at in 0usize..4000,
        splice in "[ -~\n{}\"]{0,40}",
    ) {
        let base = classify_prompt();
        let cut = truncate_clean(&base, at);
        let mutated = format!("{cut}{splice}{}", truncate_clean(&base, at / 2));
        let _ = parse_classify(&mutated);
        let _ = parse_rq1(&mutated);
        let _ = Boundedness::parse(&mutated);
    }

    #[test]
    fn static_analysis_never_panics_on_arbitrary_source(text in "\\PC{0,300}") {
        // Any source a raw `predict src=...` client can send must lex,
        // analyze, and diagnose to a structured (possibly empty) result.
        let _ = lex(&text);
        let _ = analyze(&text, &AnalyzeOptions::default());
        let _ = diagnose(&text);
    }

    #[test]
    fn static_analysis_never_panics_on_truncated_kernels(at in 0usize..600) {
        let src = kernel_source();
        let cut = truncate_clean(&src, at);
        let _ = lex(cut);
        let _ = analyze(cut, &AnalyzeOptions::default());
        let _ = diagnose(cut);
    }

    #[test]
    fn static_analysis_never_panics_on_spliced_kernels(
        at in 0usize..600,
        splice in "[ -~\n{}\"/*#\\\\]{0,40}",
    ) {
        // Splices cover the lexer's hard cases: unterminated comments
        // and strings, stray backslash continuations, orphan braces.
        let src = kernel_source();
        let mutated = format!(
            "{}{splice}{}",
            truncate_clean(&src, at),
            truncate_clean(&src, at / 2)
        );
        let _ = lex(&mutated);
        let _ = analyze(&mutated, &AnalyzeOptions::default());
        let diags = diagnose(&mutated);
        // Whatever fires must carry spans inside the mutated source.
        for d in &diags {
            prop_assert!(d.span.start <= d.span.end);
            prop_assert!(d.span.end <= mutated.len());
        }
    }

    #[test]
    fn injected_corruptions_always_parse_to_structured_failures(
        label in prop::sample::select(vec!["Compute-bound", "Bandwidth-bound"]),
    ) {
        // The engine's body corruptions must land in the invalid/refused
        // ledger columns, so the verdict parser must reject all of them
        // without panicking.
        for kind in FaultKind::ALL {
            if let Some(bad) = corrupt_text(kind, label) {
                prop_assert_eq!(Boundedness::parse(&bad), None, "{:?}", kind);
            }
        }
        prop_assert_eq!(Boundedness::parse(REFUSAL_TEXT), None);
    }
}

#[test]
fn well_formed_prompts_still_parse_after_hardening() {
    // The Result-returning parsers keep accepting what the renderers emit.
    assert!(parse_classify(&classify_prompt()).is_ok());
    assert!(parse_rq1(&rq1_prompt()).is_ok());
}
