//! Golden determinism tests for overload serving: a fixed storm stream
//! (tight deadlines against a bounded queue, a mid-stream `drain`, and
//! post-drain stragglers) must produce byte-identical transcripts across
//! `RAYON_NUM_THREADS`, at every queue depth, with and without wire
//! chaos — and the extended ledger must balance globally and per model.
//!
//! Like `determinism.rs`, everything runs inside one `#[test]` because
//! the vendored rayon re-reads `RAYON_NUM_THREADS` per call and the
//! env-var flip must not race other tests in this binary.

use std::collections::BTreeMap;
use std::io::Cursor;

use parallel_code_estimation::core::serve::{PredictionService, ServeConfig};
use parallel_code_estimation::core::study::{ChaosConfig, Study};
use parallel_code_estimation::fault::WireRates;

/// The storm: 30 tightly-deadlined jobs over the smoke corpus, `drain`,
/// three stragglers the draining server must shed, then `quit`.
fn storm_input(service: &PredictionService) -> String {
    let programs = service.programs();
    let specs = ["rtx-3080", "h100-sxm", "mi250x", "epyc-9654"];
    let models = ["o3-mini", "gpt-4o-mini", "gemini-2.0-flash-001"];
    let job = |tag: &str, i: usize| {
        let p = &programs[(i * 7) % programs.len()];
        format!(
            "predict id={tag}{i} kernel={} spec={} model={} shots={} deadline_ms=20\n",
            p.id,
            specs[i % specs.len()],
            models[i % models.len()],
            if i.is_multiple_of(2) { "zero" } else { "few" },
        )
    };
    let mut input: String = (0..30).map(|i| job("s", i)).collect();
    input.push_str("drain\n");
    for i in 0..3 {
        input.push_str(&job("pd", i));
    }
    input.push_str("quit\n");
    input
}

fn session(study: &Study, input: &str, config: &ServeConfig) -> (String, PredictionService) {
    let service = PredictionService::new(study.clone(), None).expect("service builds");
    let mut out = Vec::new();
    service
        .serve_session(Cursor::new(input.as_bytes().to_vec()), &mut out, config)
        .expect("in-memory session cannot fail on io");
    (
        String::from_utf8(out).expect("responses are utf-8"),
        service,
    )
}

/// Ordered `id=` tokens from the transcript's response lines.
fn answered(transcript: &str) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for line in transcript.lines() {
        if line.starts_with("ok ") || line.starts_with("err ") {
            if let Some(id) = line.split_whitespace().find_map(|t| t.strip_prefix("id=")) {
                *counts.entry(id.to_string()).or_insert(0) += 1;
            }
        }
    }
    counts
}

#[test]
fn storm_transcripts_are_byte_identical_and_ledgers_balance() {
    let clean = Study::smoke();
    let chaotic = {
        let mut study = Study::smoke();
        let mut chaos = ChaosConfig::uniform(0x5702, 0.15);
        chaos.plan = chaos.plan.with_wire(WireRates::uniform(0.15));
        study.chaos = Some(chaos);
        study
    };
    let reference = PredictionService::new(clean.clone(), None).expect("service builds");
    let input = storm_input(&reference);

    for depth in [2usize, 4, 8] {
        let config = ServeConfig {
            batch: 6,
            queue_depth: Some(depth),
            ..ServeConfig::default()
        };
        for (label, study) in [("clean", &clean), ("chaotic", &chaotic)] {
            let mut transcripts = Vec::new();
            for threads in ["1", "4"] {
                std::env::set_var("RAYON_NUM_THREADS", threads);
                let (transcript, service) = session(study, &input, &config);

                // The extended ledger balances globally and per model.
                assert!(service.ledger_balanced(), "{label} depth={depth}");
                let ledger = service.ledger();
                assert!(
                    ledger.balanced(),
                    "{label} depth={depth} global: {ledger:?}"
                );
                for (model, l) in service.ledgers() {
                    assert!(l.balanced(), "{label} depth={depth} {model}: {l:?}");
                }

                // The storm actually overloads: something is shed at the
                // tight depths, and the drain sheds the stragglers (wire
                // chaos may disconnect first, so only the clean runs
                // assert on the stragglers).
                assert!(ledger.shed > 0, "{label} depth={depth}: {ledger:?}");
                if label == "clean" {
                    let counts = answered(&transcript);
                    for i in 0..30 {
                        assert_eq!(counts.get(&format!("s{i}")), Some(&1), "depth={depth}");
                    }
                    for i in 0..3 {
                        assert_eq!(counts.get(&format!("pd{i}")), Some(&1), "depth={depth}");
                    }
                    assert!(
                        transcript.lines().any(|l| l.contains("shed=drain")),
                        "{transcript}"
                    );
                }
                transcripts.push(transcript);
            }
            std::env::remove_var("RAYON_NUM_THREADS");
            assert_eq!(
                transcripts[0], transcripts[1],
                "{label} depth={depth}: transcripts diverged across thread counts"
            );
        }
    }

    // Depth changes admission decisions, so the transcripts must *differ*
    // across depths — shedding is load-dependent, not cosmetic.
    let tight = session(
        &clean,
        &input,
        &ServeConfig {
            batch: 6,
            queue_depth: Some(2),
            ..ServeConfig::default()
        },
    );
    let roomy = session(
        &clean,
        &input,
        &ServeConfig {
            batch: 6,
            queue_depth: Some(8),
            ..ServeConfig::default()
        },
    );
    assert_ne!(tight.0, roomy.0);
    assert!(tight.1.ledger().shed > roomy.1.ledger().shed);
}
