//! Streamed-pipeline identity tests: the sharded, bounded-memory
//! pipeline must render byte-identically to the materialize-everything
//! path for *any* shard size and *any* rayon thread count, and
//! re-streaming the same spec must profile zero new kernels.
//!
//! The vendored rayon re-reads `RAYON_NUM_THREADS` on every parallel
//! call, which lets the identity test toggle thread budgets in-process.
//! The env-var flip lives inside one `#[test]` so it cannot race another
//! env-flipping test in this binary.

use parallel_code_estimation::core::study::Study;
use parallel_code_estimation::dataset::{
    run_pipeline_cached, run_pipeline_streamed, tokenize_corpus, Dataset, PipelineReport, Split,
};
use parallel_code_estimation::gpu_sim::SimCaches;
use parallel_code_estimation::kernels::{CorpusSpec, VariantAxes};

/// The full observable output of one pipeline run: dataset JSON, split
/// JSON, and the funnel report JSON — everything a downstream consumer
/// sees.
fn render(dataset: &Dataset, split: &Split, report: &PipelineReport) -> String {
    format!(
        "{}\n{}\n{}",
        dataset.to_json().expect("dataset serializes"),
        serde_json::to_string(split).expect("split serializes"),
        serde_json::to_string(report).expect("report serializes"),
    )
}

/// A smoke-scale variant-expanded spec: 210 base programs × unroll/
/// precision axes. Small enough for debug-build CI, expanded enough that
/// sharding and dedup both do real work.
fn smoke_spec() -> (CorpusSpec, Study) {
    let study = Study::smoke();
    let spec = CorpusSpec {
        base: study.corpus,
        axes: VariantAxes {
            size_shifts: Vec::new(),
            flip_precision: true,
            unroll: vec![4],
            fused: Vec::new(),
        },
    };
    (spec, study)
}

#[test]
fn streamed_pipeline_is_byte_identical_across_shards_and_threads() {
    let (spec, study) = smoke_spec();

    // The ground truth: materialize the whole expanded corpus and run the
    // eager cached pipeline over it.
    let corpus: Vec<_> = spec
        .stream()
        .collect::<Result<_, _>>()
        .expect("corpus streams");
    let caches = SimCaches::default();
    let tokenized = tokenize_corpus(&corpus, &study.pipeline);
    let (dataset, split, report) =
        run_pipeline_cached(&corpus, &tokenized, &study.pipeline, &caches);
    let golden = render(&dataset, &split, &report);

    for threads in ["1", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        assert_eq!(
            rayon::current_num_threads(),
            threads.parse::<usize>().expect("thread count parses"),
            "vendored rayon must honor RAYON_NUM_THREADS"
        );
        for shard_size in [1, 37, 256, usize::MAX] {
            let caches = SimCaches::default();
            let (dataset, split, report) =
                run_pipeline_streamed(&spec, &study.pipeline, &caches, shard_size)
                    .expect("streamed pipeline runs");
            assert_eq!(
                golden,
                render(&dataset, &split, &report),
                "streamed output diverged at shard_size={shard_size}, threads={threads}"
            );
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn restreaming_the_same_seed_profiles_zero_new_kernels() {
    let (spec, study) = smoke_spec();
    let caches = SimCaches::default();

    let (_, _, first) =
        run_pipeline_streamed(&spec, &study.pipeline, &caches, 64).expect("first stream runs");
    assert!(
        first.dedup.duplicates > 0,
        "variant expansion must produce duplicate profile fingerprints"
    );
    let misses_after_first = caches.profiles().counters().misses;
    assert!(misses_after_first > 0, "first stream profiles kernels");

    // Same spec, same caches: every profile is a memo hit.
    let (_, _, second) =
        run_pipeline_streamed(&spec, &study.pipeline, &caches, 64).expect("second stream runs");
    assert_eq!(
        caches.profiles().counters().misses,
        misses_after_first,
        "re-streaming the same seed must profile zero new kernels"
    );
    assert_eq!(first.dedup, second.dedup, "dedup accounting must be stable");
}
