//! Property-based tests (proptest) over the core data structures and
//! invariants: roofline algebra, counters, tokenizer losslessness,
//! metric bounds, statistics, and the memory model.

use proptest::prelude::*;

use parallel_code_estimation::gpu_sim::memory::coalescing_factor;
use parallel_code_estimation::gpu_sim::AccessPattern;
use parallel_code_estimation::metrics::{chi_squared_independence, ConfusionMatrix};
use parallel_code_estimation::roofline::{Boundedness, HardwareSpec, OpClass, OpCounts, Roofline};
use parallel_code_estimation::tokenizer::{reference, token_quartiles, BpeTrainer, Tokenizer};

proptest! {
    #[test]
    fn roofline_attainable_never_exceeds_either_bound(
        peak in 1.0f64..1e5,
        bw in 1.0f64..1e4,
        ai in 1e-6f64..1e6,
    ) {
        let roof = Roofline::new(peak, bw);
        let att = roof.attainable_gops(ai);
        prop_assert!(att <= peak + 1e-9);
        prop_assert!(att <= bw * ai + 1e-9);
        // And it achieves one of them (the min).
        prop_assert!((att - peak.min(bw * ai)).abs() < 1e-9);
    }

    #[test]
    fn roofline_classification_agrees_with_balance_point(
        peak in 1.0f64..1e5,
        bw in 1.0f64..1e4,
        ai in 1e-6f64..1e6,
    ) {
        let roof = Roofline::new(peak, bw);
        let verdict = roof.classify(ai);
        if ai < roof.balance_point() {
            prop_assert_eq!(verdict, Boundedness::Bandwidth);
        } else {
            prop_assert_eq!(verdict, Boundedness::Compute);
        }
    }

    #[test]
    fn efficiency_is_bounded_for_physical_observations(
        peak in 1.0f64..1e5,
        bw in 1.0f64..1e4,
        ai in 1e-3f64..1e4,
        frac in 0.0f64..1.0,
    ) {
        let roof = Roofline::new(peak, bw);
        let achieved = roof.attainable_gops(ai) * frac;
        let eff = roof.efficiency(ai, achieved);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&eff));
    }

    #[test]
    fn op_counts_ai_is_scale_invariant(
        sp in 1u64..1_000_000,
        bytes in 1u64..1_000_000,
        k in 1u64..1000,
    ) {
        let a = OpCounts { flops_sp: sp, dram_read_bytes: bytes, ..Default::default() };
        let b = OpCounts {
            flops_sp: sp * k,
            dram_read_bytes: bytes * k,
            ..Default::default()
        };
        let ra = a.ai(OpClass::Sp);
        let rb = b.ai(OpClass::Sp);
        prop_assert!((ra - rb).abs() < 1e-9 * ra.max(1.0));
    }

    #[test]
    fn accumulate_is_commutative_and_adds_totals(
        a_sp in 0u64..1u64 << 40, a_rd in 0u64..1u64 << 40,
        b_sp in 0u64..1u64 << 40, b_rd in 0u64..1u64 << 40,
    ) {
        let a = OpCounts { flops_sp: a_sp, dram_read_bytes: a_rd, ..Default::default() };
        let b = OpCounts { flops_sp: b_sp, dram_read_bytes: b_rd, ..Default::default() };
        prop_assert_eq!(a.accumulate(&b), b.accumulate(&a));
        prop_assert_eq!(a.accumulate(&b).total_ops(), a.total_ops() + b.total_ops());
    }

    #[test]
    fn tokenizer_roundtrips_arbitrary_ascii(text in "[ -~\n\t]{0,400}") {
        // Train on unrelated material; encode/decode must still be exact.
        let vocab = BpeTrainer::new(400).train(["float x = a[i] * b[i]; for (int i = 0; i < n; i++)"]);
        let tok = Tokenizer::new(vocab);
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    #[test]
    fn tokenizer_roundtrips_unicode(text in "\\PC{0,80}") {
        let tok = Tokenizer::new(BpeTrainer::new(300).train(["hello world"]));
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }

    #[test]
    fn fast_trainer_matches_naive_reference(
        docs in prop::collection::vec("[ -~\n\t]{0,60}", 1..8),
        extra_vocab in 0usize..80,
        min_freq in 1u64..4,
    ) {
        // The incremental trainer must produce a bit-identical merge
        // table to the naive recount-per-merge reference: same argmax
        // (freq desc, then smallest pair), same merge application, same
        // stopping rule.
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let vocab_size = 256 + extra_vocab;
        let fast = BpeTrainer::new(vocab_size)
            .min_frequency(min_freq)
            .train(refs.iter().copied());
        let naive = reference::naive_train(vocab_size, min_freq, refs.iter().copied());
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn fast_encoder_matches_naive_reference(
        corpus in "[a-z {}();=+*\n]{20,200}",
        text in "[ -~\n\t]{0,150}",
    ) {
        // The heap-merge encoder must produce exactly the ids the naive
        // lowest-rank-first rescan produces, on text unrelated to the
        // training corpus.
        let tok = Tokenizer::new(BpeTrainer::new(350).train([corpus.as_str()]));
        prop_assert_eq!(tok.encode(&text), reference::naive_encode(&tok, &text));
    }

    #[test]
    fn trained_tokenizer_roundtrips_its_own_corpus(
        docs in prop::collection::vec("\\PC{0,50}", 1..6),
    ) {
        // Training on arbitrary unicode then encoding the very same
        // documents must be lossless.
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let tok = Tokenizer::new(BpeTrainer::new(320).train(refs.iter().copied()));
        for doc in &docs {
            prop_assert_eq!(&tok.decode(&tok.encode(doc)), doc);
        }
    }

    #[test]
    fn batch_apis_match_sequential_encoding(
        docs in prop::collection::vec("[ -~]{0,80}", 1..10),
    ) {
        let tok = Tokenizer::new(BpeTrainer::new(300).train(["shared training corpus text"]));
        let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
        let batch_ids = tok.encode_batch(&refs);
        let batch_counts = tok.count_batch(&refs);
        for (i, doc) in docs.iter().enumerate() {
            prop_assert_eq!(&batch_ids[i], &tok.encode(doc));
            prop_assert_eq!(batch_counts[i], batch_ids[i].len());
        }
    }

    #[test]
    fn token_count_is_subadditive_under_concatenation(
        a in "[a-z ]{0,80}",
        b in "[a-z ]{0,80}",
    ) {
        // Concatenation can only merge at the seam: count(a+b) can differ
        // from count(a)+count(b) by at most a constant from seam effects,
        // and is never more than 1 larger.
        let tok = Tokenizer::new(BpeTrainer::new(350).train(["the quick brown fox jumps"]));
        let joined = format!("{a}{b}");
        let sum = tok.count(&a) + tok.count(&b);
        prop_assert!(tok.count(&joined) <= sum + 1);
    }

    #[test]
    fn confusion_metrics_stay_in_bounds(
        tp in 0u64..500, fp in 0u64..500, tn in 0u64..500, fn_ in 0u64..500,
    ) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_, invalid_pos: 0, invalid_neg: 0 };
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        prop_assert!((-1.0..=1.0).contains(&cm.mcc()));
    }

    #[test]
    fn mcc_is_antisymmetric_under_prediction_flip(
        tp in 0u64..200, fp in 0u64..200, tn in 0u64..200, fn_ in 0u64..200,
    ) {
        let cm = ConfusionMatrix { tp, fp, tn, fn_, invalid_pos: 0, invalid_neg: 0 };
        // Flipping every *prediction* swaps tp<->fn and tn<->fp.
        let flipped = ConfusionMatrix {
            tp: fn_, fn_: tp, tn: fp, fp: tn,
            invalid_pos: 0, invalid_neg: 0,
        };
        prop_assert!((cm.mcc() + flipped.mcc()).abs() < 1e-9);
    }

    #[test]
    fn chi2_p_values_are_probabilities(
        a in 1u64..200, b in 1u64..200, c in 1u64..200, d in 1u64..200,
    ) {
        let r = chi_squared_independence(&[vec![a, b], vec![c, d]]).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert!(r.statistic >= 0.0);
    }

    #[test]
    fn quartiles_are_ordered_and_within_range(counts in prop::collection::vec(0usize..100_000, 1..200)) {
        let s = token_quartiles(&counts);
        prop_assert!(s.min <= s.q1);
        prop_assert!(s.q1 <= s.median);
        prop_assert!(s.median <= s.q3);
        prop_assert!(s.q3 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn coalescing_factor_is_bounded(
        stride in 1u32..4096,
        elem in prop::sample::select(vec![1u64, 2, 4, 8, 16, 32]),
    ) {
        for pattern in [
            AccessPattern::Coalesced,
            AccessPattern::Strided(stride),
            AccessPattern::Random,
            AccessPattern::Broadcast,
        ] {
            let f = coalescing_factor(pattern, elem);
            // Bounded by one sector per lane (32B / elem) below, and the
            // warp-broadcast saving above.
            prop_assert!(f >= 1.0 / 32.0, "{pattern:?} {elem}: {f}");
            prop_assert!(f <= (32.0 / elem as f64).max(1.0) + 1e-9, "{pattern:?} {elem}: {f}");
        }
    }

    #[test]
    fn boundedness_parse_roundtrips(b in prop::sample::select(vec![Boundedness::Compute, Boundedness::Bandwidth])) {
        prop_assert_eq!(Boundedness::parse(b.answer_token()), Some(b));
        prop_assert_eq!(Boundedness::parse(&b.answer_token().to_lowercase()), Some(b));
        prop_assert_eq!(b.flipped().flipped(), b);
    }

    #[test]
    fn preset_lookup_survives_case_and_separator_mangling(
        idx in 0usize..10,
        case_seed in prop::collection::vec(0u8..2, 64..65),
        sep in prop::sample::select(vec!["", " ", "-", "_", ".", "  "]),
    ) {
        let presets = HardwareSpec::presets();
        prop_assert!(idx < presets.len());
        let original = &presets[idx];
        // Mangle: random per-character case, separators swapped for an
        // arbitrary (possibly empty) non-alphanumeric string.
        let mut mangled = String::new();
        for (i, c) in original.name.chars().enumerate() {
            if c.is_ascii_alphanumeric() {
                if case_seed[i % case_seed.len()] == 0 {
                    mangled.push(c.to_ascii_lowercase());
                } else {
                    mangled.push(c.to_ascii_uppercase());
                }
            } else {
                mangled.push_str(sep);
            }
        }
        let found = HardwareSpec::preset_by_name(&mangled);
        prop_assert!(found.is_ok(), "'{}' failed to resolve", mangled);
        prop_assert_eq!(&found.unwrap().name, &original.name);
    }

    #[test]
    fn ridge_points_are_finite_positive_and_monotone_in_bandwidth(
        idx in 0usize..10,
        scale in 1.01f64..100.0,
    ) {
        // Satellite invariant for BOTH spec classes (GPU and CPU presets
        // alike): every class's ridge point is finite and positive, and
        // raising bandwidth strictly lowers it (ridge = peak / bandwidth,
        // in the class's own units — FLOP/byte or INTOP/byte).
        let presets = HardwareSpec::presets();
        prop_assert!(idx < presets.len());
        let hw = &presets[idx];
        let mut wider = hw.clone();
        wider.bandwidth_gbs *= scale;
        for class in OpClass::ALL {
            let ridge = hw.ridge_point(class);
            let ridge_wider = wider.ridge_point(class);
            prop_assert!(ridge.is_finite() && ridge > 0.0, "{} {class}: {ridge}", hw.name);
            prop_assert!(
                ridge_wider.is_finite() && ridge_wider > 0.0,
                "{} {class}: {ridge_wider}", hw.name
            );
            prop_assert!(
                ridge_wider < ridge,
                "{} {class}: ridge must fall as bandwidth rises ({ridge_wider} !< {ridge})",
                hw.name
            );
            // Exactly inverse-proportional: ridge(bw*k) * k == ridge(bw).
            prop_assert!((ridge_wider * scale - ridge).abs() < 1e-9 * ridge.max(1.0));
        }
    }
}

// ---------------------------------------------------------------------
// Hardware-catalog invariants: exhaustive over the preset list (the
// "arbitrary input" here is every catalog entry, present and future).
// ---------------------------------------------------------------------

#[test]
fn every_preset_has_positive_peaks_and_bandwidth() {
    let presets = HardwareSpec::presets();
    assert!(presets.len() >= 6, "catalog shrank below the suite minimum");
    for hw in &presets {
        assert!(hw.validate().is_empty(), "{}: {:?}", hw.name, hw.validate());
        for class in OpClass::ALL {
            assert!(hw.peak_gops(class) > 0.0, "{} {class}", hw.name);
        }
        assert!(hw.bandwidth_gbs > 0.0, "{}", hw.name);
    }
}

#[test]
fn every_preset_ridge_point_is_finite_and_class_consistent() {
    for hw in HardwareSpec::presets() {
        for class in OpClass::ALL {
            let ridge = hw.ridge_point(class);
            assert!(
                ridge.is_finite() && ridge > 0.0,
                "{} {class}: ridge {ridge}",
                hw.name
            );
            // The ridge point IS the roofline balance point.
            assert_eq!(ridge, hw.roofline(class).balance_point(), "{}", hw.name);
        }
        // DP peak never exceeds SP peak (validated), so with one shared
        // bandwidth the DP ridge can never exceed the SP ridge.
        assert!(
            hw.ridge_point(OpClass::Dp) <= hw.ridge_point(OpClass::Sp),
            "{}: DP ridge above SP ridge",
            hw.name
        );
    }
}

#[test]
fn preset_by_name_round_trips_every_catalog_name() {
    let presets = HardwareSpec::presets();
    assert_eq!(HardwareSpec::preset_names().len(), presets.len());
    for hw in &presets {
        let by_full = HardwareSpec::preset_by_name(&hw.name)
            .unwrap_or_else(|e| panic!("'{}' did not resolve: {e}", hw.name));
        assert_eq!(&by_full, hw, "full-name lookup must be exact");
        let by_lower = HardwareSpec::preset_by_name(&hw.name.to_lowercase()).unwrap();
        assert_eq!(&by_lower, hw);
        let by_upper = HardwareSpec::preset_by_name(&hw.name.to_uppercase()).unwrap();
        assert_eq!(&by_upper, hw);
    }
}
