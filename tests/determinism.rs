//! Golden determinism tests: every rendered artifact must be
//! byte-identical across repeated runs *and* across serial vs parallel
//! rayon execution — the fan-out over specs, models, and samples must
//! never reorder or perturb results.
//!
//! The vendored rayon re-reads `RAYON_NUM_THREADS` on every parallel
//! call (real rayon reads it once at pool init), which lets this test
//! toggle serial execution in-process. Everything runs inside one `#[test]`
//! so the env-var flip cannot race a concurrently running test in this
//! binary.

use parallel_code_estimation::core::report::{
    render_flips_csv, render_suite, render_suite_csv, render_table1,
};
use parallel_code_estimation::core::study::{Study, StudyData};
use parallel_code_estimation::core::suite::{run_suite, Suite};
use parallel_code_estimation::core::table1::build_table1;
use parallel_code_estimation::roofline::HardwareSpec;

/// Render every artifact the golden test guards: the smoke-scale Table 1
/// and the full suite report (markdown + both CSVs).
fn render_everything() -> String {
    let study = Study::smoke();
    let data = StudyData::build(&study).expect("study builds");
    let table = build_table1(&study, &data);

    let suite = Suite::smoke_with_specs(vec![
        HardwareSpec::rtx_3080(),
        HardwareSpec::a100(),
        HardwareSpec::mi250x(),
    ]);
    let outcome = run_suite(&suite).expect("smoke suite axes are valid");

    format!(
        "{}\n{}\n{}\n{}",
        render_table1(&table),
        render_suite(&outcome),
        render_suite_csv(&outcome),
        render_flips_csv(&outcome),
    )
}

#[test]
fn artifacts_render_byte_identically_across_runs_and_thread_counts() {
    // One run at the default thread budget (whatever the machine offers).
    let default_run = render_everything();
    assert!(!default_run.is_empty());

    // Two genuinely multi-threaded runs: force 4 workers even on a
    // single-core CI box.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    assert_eq!(
        rayon::current_num_threads(),
        4,
        "vendored rayon must honor RAYON_NUM_THREADS"
    );
    let parallel_a = render_everything();
    let parallel_b = render_everything();
    assert_eq!(parallel_a, parallel_b, "two parallel runs diverged");

    // One serial run: same bytes, proving the rayon fan-out neither
    // reorders results nor perturbs accumulated costs.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    assert_eq!(rayon::current_num_threads(), 1);
    let serial = render_everything();
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(parallel_a, serial, "serial vs parallel rendering diverged");
    assert_eq!(
        parallel_a, default_run,
        "default-budget vs pinned-budget rendering diverged"
    );
}
