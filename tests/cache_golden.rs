//! Golden cache-correctness tests: every memoization layer added by the
//! suite-scale caching PR must be *unobservable* in the artifacts.
//!
//! Cold caches, a freshly-populated bundle, a fully-warm bundle reused
//! across runs, the timed runner, and any `RAYON_NUM_THREADS` must all
//! render byte-identical reports — `total_cost` included, since billing
//! derives from integer token totals over byte-identical prompts.
//!
//! Everything runs inside one `#[test]` so the env-var flip cannot race
//! a concurrently running test in this binary (same pattern as
//! `tests/determinism.rs`).

use parallel_code_estimation::core::caches::{CacheBudget, SuiteCaches};
use parallel_code_estimation::core::report::{
    render_flips_csv, render_suite, render_suite_csv, render_table1,
};
use parallel_code_estimation::core::study::{Study, StudyData};
use parallel_code_estimation::core::suite::{
    run_suite, run_suite_cached, run_suite_timed, Suite, SuiteOutcome,
};
use parallel_code_estimation::core::table1::{
    build_table1, build_table1_from_bank_cached, Rq1Bank,
};
use parallel_code_estimation::roofline::HardwareSpec;

fn tiny_suite() -> Suite {
    let mut suite = Suite::smoke_with_specs(vec![
        HardwareSpec::rtx_3080(),
        HardwareSpec::h100_sxm(),
        HardwareSpec::mi250x(),
    ]);
    // Small enough for CI; three specs exercise real label flips.
    suite.base.corpus.cuda_programs = 90;
    suite.base.corpus.omp_programs = 72;
    suite.base.rq1_rooflines = 16;
    suite.base.pipeline.per_combo_cap = 10;
    suite
}

fn render(outcome: &SuiteOutcome) -> String {
    format!(
        "{}\n{}\n{}",
        render_suite(outcome),
        render_suite_csv(outcome),
        render_flips_csv(outcome),
    )
}

#[test]
fn cached_artifacts_are_byte_identical_across_cache_states_and_thread_counts() {
    let suite = tiny_suite();

    // --- Reference: cold caches (run_suite builds a private fresh bundle).
    let cold = render(&run_suite(&suite).unwrap());

    // --- One shared bundle, exercised twice: the first run populates it,
    // the second is served by the profile memo and analysis caches.
    let caches = SuiteCaches::new();
    let warm_first = render(&run_suite_cached(&suite, &caches).unwrap());
    let warm_second = render(&run_suite_cached(&suite, &caches).unwrap());
    assert_eq!(cold, warm_first, "cold vs freshly-populated bundle");
    assert_eq!(cold, warm_second, "cold vs fully-warm bundle");
    let report = caches.report();
    assert!(report.summary.hits > 0, "{report:?}");
    assert!(report.profile.hits > 0, "{report:?}");
    assert!(report.analysis.hits > 0, "{report:?}");
    assert!(report.classify_parse.hits > 0, "{report:?}");

    // --- The timed runner is instrumentation-only.
    let (timed, bench) = run_suite_timed(&suite, &SuiteCaches::new()).unwrap();
    assert_eq!(cold, render(&timed), "timed vs untimed");
    assert_eq!(bench.specs, suite.specs.len());

    // --- Table 1 (single-spec artifact), cold vs warm, total_cost
    // included in the rendered bytes.
    let study = Study::smoke();
    let data = StudyData::build(&study).expect("study builds");
    let t_cold = render_table1(&build_table1(&study, &data));
    let t_caches = SuiteCaches::new();
    let bank = Rq1Bank::build_cached(&study, &t_caches.llm);
    let t_warm = render_table1(
        &build_table1_from_bank_cached(&study, &data.dataset.samples, &bank, &t_caches).table,
    );
    let t_warm2 = render_table1(
        &build_table1_from_bank_cached(&study, &data.dataset.samples, &bank, &t_caches).table,
    );
    assert_eq!(t_cold, t_warm, "Table 1 cold vs warm");
    assert_eq!(t_cold, t_warm2, "Table 1 cold vs fully-warm");

    // --- Thread-count invariance, on the already-warm shared bundle and
    // on a cold one, forced through genuinely different rayon budgets.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    assert_eq!(rayon::current_num_threads(), 4);
    let warm_parallel = render(&run_suite_cached(&suite, &caches).unwrap());
    let cold_parallel = render(&run_suite(&suite).unwrap());
    std::env::set_var("RAYON_NUM_THREADS", "1");
    assert_eq!(rayon::current_num_threads(), 1);
    let warm_serial = render(&run_suite_cached(&suite, &caches).unwrap());
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(warm_parallel, warm_serial, "warm: 4 threads vs 1 thread");
    assert_eq!(cold, warm_parallel, "default vs pinned thread budgets");
    assert_eq!(cold, cold_parallel, "cold parallel rerun diverged");

    // --- Bounded bundles: a budget tight enough to evict mid-run must
    // still render the cold-cache bytes, at any thread count. Evictions
    // cost recomputation, never answers.
    let tight = CacheBudget::uniform(96 * 1024);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let evicting = SuiteCaches::with_budget(tight);
    let bounded_parallel = render(&run_suite_cached(&suite, &evicting).unwrap());
    let report = evicting.report();
    assert!(
        report.total_evictions() > 0,
        "budget never evicted: {report:?}"
    );
    assert!(
        report.total_resident_bytes() <= 5 * 96 * 1024,
        "resident bytes exceed the five per-cache budgets: {report:?}"
    );
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let bounded_serial =
        render(&run_suite_cached(&suite, &SuiteCaches::with_budget(tight)).unwrap());
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(cold, bounded_parallel, "bounded (evicting) vs cold");
    assert_eq!(cold, bounded_serial, "bounded: 1 thread vs cold");

    // --- The degenerate budget: a 1-byte cap means every insert is
    // immediately evicted (all-miss), and the artifacts still hold.
    let all_miss = SuiteCaches::with_budget(CacheBudget::uniform(1));
    assert_eq!(
        cold,
        render(&run_suite_cached(&suite, &all_miss).unwrap()),
        "capacity-1 (all-miss) bundle diverged"
    );
    let report = all_miss.report();
    assert_eq!(
        report.summary.hits, 0,
        "1-byte budget cannot retain entries: {report:?}"
    );
    assert_eq!(report.profile.hits, 0, "{report:?}");
}
