//! Integration tests for the hazard-diagnostics layer: per-rule golden
//! fixtures with pinned spans, corpus cleanliness, and the raw-source
//! `predict src=...` path through the prediction service (byte-identical
//! transcripts across batch sizes and thread counts, typed lint shedding
//! counted in the response ledger).

use std::io::Cursor;

use parallel_code_estimation::core::serve::{encode_src, PredictionService};
use parallel_code_estimation::core::study::Study;
use parallel_code_estimation::kernels::build_corpus;
use parallel_code_estimation::static_analysis::{diagnose, Diagnostic, RuleId, Severity};

/// A clean kernel: guarded, thread-distinct saxpy store.
const CLEAN_SRC: &str = "__global__ void saxpy(int n, float a, const float* x, float* y) {\n    int i = blockIdx.x * blockDim.x + threadIdx.x;\n    if (i < n) { y[i] = a * x[i] + y[i]; }\n}\n";

/// A racy kernel: tree reduction with the loop barrier deleted.
const RACY_SRC: &str = "__global__ void reduce_sum(const float* x, float* out, int n) {\n    __shared__ float buf[256];\n    int i = blockIdx.x * blockDim.x + threadIdx.x;\n    buf[threadIdx.x] = (i < n) ? x[i] : 0.0f;\n    __syncthreads();\n    for (int s = 128; s > 0; s >>= 1) {\n        if (threadIdx.x < s) { buf[threadIdx.x] += buf[threadIdx.x + s]; }\n    }\n    if (threadIdx.x == 0) { out[blockIdx.x] = buf[0]; }\n}\n";

/// The first finding for `rule` in `src`, asserting there is one.
fn first_finding(src: &str, rule: RuleId) -> Diagnostic {
    let diags = diagnose(src);
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "{rule} must fire on the fixture: {diags:?}"
    );
    diags
        .into_iter()
        .find(|d| d.rule == rule)
        .expect("just asserted present")
}

/// Assert a finding's span is pinned to exact coordinates and text, and
/// that re-diagnosing reproduces it byte-for-byte.
fn assert_span(src: &str, rule: RuleId, line: u32, col: u32, text: &str) {
    let d = first_finding(src, rule);
    assert_eq!(d.severity, rule.severity());
    assert_eq!((d.span.line, d.span.col), (line, col), "{rule}: {d:?}");
    assert_eq!(&src[d.span.start..d.span.end], text, "{rule}: {d:?}");
    // Span stability: the pass is deterministic, so a second run must
    // reproduce the identical finding.
    assert_eq!(first_finding(src, rule), d, "{rule} span must be stable");
}

#[test]
fn each_rule_fires_on_its_golden_fixture_with_a_stable_span() {
    // shared-race: the deleted loop barrier leaves buf written and read
    // across lanes inside the reduction loop.
    assert_span(RACY_SRC, RuleId::SharedRace, 7, 32, "buf");

    // global-race: histogram bins indexed by data, not by thread.
    let hist = "__global__ void hist(long n, const int* data, int* bins) {\n\
                \x20 long i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                \x20 if (i < n) bins[data[i] & 255] += 1;\n}\n";
    assert_span(hist, RuleId::GlobalRace, 3, 14, "bins");

    // omp-reduction: accumulation across iterations without a
    // reduction(...) clause.
    let omp = "float sum = 0;\n\
               #pragma omp target teams distribute parallel for map(to: x[0:n])\n\
               for (long i = 0; i < n; i++) sum += x[i];\n";
    assert_span(omp, RuleId::OmpReduction, 3, 30, "sum");

    // barrier-divergence: __syncthreads() under a thread-dependent branch.
    let divergent = "__global__ void k(float* x) {\n\
                     \x20 __shared__ float c[32];\n\
                     \x20 int tid = threadIdx.x;\n\
                     \x20 if (tid < 16) {\n\
                     \x20   c[tid] = x[tid];\n\
                     \x20   __syncthreads();\n\
                     \x20 }\n\
                     \x20 x[tid] = c[tid];\n}\n";
    assert_span(divergent, RuleId::BarrierDivergence, 6, 5, "__syncthreads");

    // loop-carried-dep: serialized accumulator chain.
    let dot = "__global__ void dot(long n, const float* x, float* out) {\n\
               \x20 float acc = 0;\n\
               \x20 for (long j = 0; j < n; j++) acc += x[j];\n\
               \x20 out[0] = acc;\n}\n";
    assert_span(dot, RuleId::LoopCarriedDep, 3, 32, "acc");

    // strided-access: transposed store scales the lane index by dim.
    let transpose = "__global__ void transpose(int dim, const float* in, float* out) {\n\
                     \x20 int x = blockIdx.x * blockDim.x + threadIdx.x;\n\
                     \x20 int y = blockIdx.y * blockDim.y + threadIdx.y;\n\
                     \x20 out[x * dim + y] = in[y * dim + x];\n}\n";
    assert_span(transpose, RuleId::StridedAccess, 4, 3, "out");
}

#[test]
fn clean_fixture_carries_no_diagnostics_and_racy_fixture_errors() {
    assert!(diagnose(CLEAN_SRC).is_empty(), "{:?}", diagnose(CLEAN_SRC));
    let racy: Vec<_> = diagnose(RACY_SRC)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(!racy.is_empty());
    assert!(
        racy.iter().all(|d| d.rule == RuleId::SharedRace),
        "{racy:?}"
    );
}

#[test]
fn shipped_smoke_corpus_is_free_of_error_severity_diagnostics() {
    // The full-corpus audit lives in the dataset pipeline tests (the
    // streamed hazard audit); here the smoke corpus — the tier the serve
    // path actually loads — must be error-clean source by source.
    let corpus = build_corpus(&Study::smoke().corpus).expect("corpus builds");
    assert!(!corpus.is_empty());
    for p in &corpus {
        let errors: Vec<_> = diagnose(&p.source)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{}: {errors:?}", p.id);
    }
}

/// Run a protocol session and return the transcript.
fn session(service: &PredictionService, input: &str, batch: usize) -> String {
    let mut out = Vec::new();
    service
        .serve_lines(Cursor::new(input.as_bytes()), &mut out, batch)
        .expect("session runs");
    String::from_utf8(out).expect("transcript is UTF-8")
}

#[test]
fn raw_source_predict_is_invariant_and_lint_sheds_into_the_ledger() {
    // Everything in one #[test] so the RAYON_NUM_THREADS flips cannot
    // race another test in this binary (same pattern as tests/serve.rs).
    let study = Study::smoke();
    let clean = encode_src(CLEAN_SRC);
    let racy = encode_src(RACY_SRC);
    let input = format!(
        "predict id=c1 src={clean} spec=rtx-3080\n\
         predict id=r1 src={racy} spec=rtx-3080\n\
         predict id=c2 src={clean} spec=h100-sxm\n\
         stats\nquit\n"
    );

    std::env::set_var("RAYON_NUM_THREADS", "4");
    let service = PredictionService::new(study.clone(), None).expect("service builds");
    let reference = session(&service, &input, 8);
    let rows: Vec<&str> = reference.lines().collect();
    assert_eq!(rows.len(), 4, "{reference}");

    // Clean source is admitted and answered with the static roofline
    // label — a pure function of (src, spec).
    assert!(
        rows[0].starts_with("ok id=c1 kernel=saxpy model=static prediction="),
        "{}",
        rows[0]
    );
    assert!(
        rows[0].contains("margin=") && rows[0].ends_with("warnings=0"),
        "{}",
        rows[0]
    );
    assert!(
        rows[2].starts_with("ok id=c2 kernel=saxpy model=static "),
        "{}",
        rows[2]
    );

    // Hazardous source is shed with the typed lint error.
    assert!(rows[1].starts_with("err id=r1 kind=lint "), "{}", rows[1]);
    assert!(rows[1].contains("shared-race at 7:"), "{}", rows[1]);

    // The shed job lands in the ledger's lint column and balances.
    let stats = rows[3];
    assert!(stats.contains(" lint=1 "), "{stats}");
    assert!(stats.contains("ledger_balanced=true"), "{stats}");
    assert!(service.ledger_balanced());

    // Batch-size invariance: byte-identical transcripts however the
    // admission loop chunks the stream.
    for batch in [1, 2, 100] {
        let got = session(
            &PredictionService::new(study.clone(), None).expect("service builds"),
            &input,
            batch,
        );
        assert_eq!(reference, got, "batch={batch} diverged");
    }

    // Thread-count invariance: the static path never touches the worker
    // pool, so RAYON_NUM_THREADS=1 reproduces the same bytes.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = PredictionService::new(study, None).expect("service builds");
    let got = session(&serial, &input, 8);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(reference, got, "serial transcript diverged");
}
