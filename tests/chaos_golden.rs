//! Golden determinism tests for the chaos layer: a fixed `FaultPlan` seed
//! must produce byte-identical reports across serial and parallel rayon
//! execution, and a zero fault rate must be byte-identical to running
//! with no chaos config at all.
//!
//! Like `determinism.rs`, everything runs inside one `#[test]` because the
//! vendored rayon re-reads `RAYON_NUM_THREADS` per call and the env-var
//! flip must not race other tests in this binary.

use parallel_code_estimation::core::report::{
    render_accounting_csv, render_suite, render_suite_csv,
};
use parallel_code_estimation::core::study::ChaosConfig;
use parallel_code_estimation::core::suite::{run_suite, Suite, SuiteOutcome};
use parallel_code_estimation::roofline::HardwareSpec;

fn chaos_suite(chaos: Option<ChaosConfig>) -> Suite {
    let mut suite = Suite::smoke_with_specs(vec![HardwareSpec::rtx_3080(), HardwareSpec::a100()]);
    // The structure, not the scale, is under test.
    suite.base.corpus.cuda_programs = 90;
    suite.base.corpus.omp_programs = 72;
    suite.base.pipeline.per_combo_cap = 12;
    suite.base.pipeline.tokenizer_vocab = 400;
    suite.base.pipeline.tokenizer_stride = 17;
    suite.base.rq1_rooflines = 16;
    suite.base.chaos = chaos;
    suite
}

fn run_and_render(chaos: Option<ChaosConfig>) -> (SuiteOutcome, String) {
    let suite = chaos_suite(chaos);
    let outcome = run_suite(&suite).expect("smoke axes are valid");
    let rendered = format!(
        "{}\n{}\n{}",
        render_suite(&outcome),
        render_suite_csv(&outcome),
        render_accounting_csv(&outcome),
    );
    (outcome, rendered)
}

#[test]
fn chaos_reports_are_byte_identical_across_thread_counts_and_seeds_pin_faults() {
    let chaos = || Some(ChaosConfig::uniform(42, 0.1));

    std::env::set_var("RAYON_NUM_THREADS", "1");
    assert_eq!(rayon::current_num_threads(), 1);
    let (serial_outcome, serial) = run_and_render(chaos());

    std::env::set_var("RAYON_NUM_THREADS", "4");
    assert_eq!(rayon::current_num_threads(), 4);
    let (parallel_outcome, parallel) = run_and_render(chaos());

    // Byte-identical chaos: the fault plan draws from fingerprints, never
    // from scheduling.
    assert_eq!(
        serial, parallel,
        "chaos reports diverged across thread counts"
    );
    assert_eq!(serial_outcome, parallel_outcome);

    // The chaos actually fired, recovered, and balanced: every injected
    // request is accounted as recovered, invalid, or refused.
    let acc = parallel_outcome.accounting();
    assert!(acc.injected > 0, "fault rate 0.1 must inject: {acc:?}");
    assert!(acc.retried_valid > 0, "retries must recover: {acc:?}");
    assert!(acc.balanced(), "{acc:?}");
    // At a 10% rate every cell still completes (acceptance criterion).
    assert_eq!(
        parallel_outcome.completed().len(),
        parallel_outcome.cells.len()
    );
    assert!(serial.contains("### Response accounting"));
    assert!(serial.contains("Ledger:"));

    // A different seed reproduces a *different* fault pattern…
    let (other_outcome, other) = run_and_render(Some(ChaosConfig::uniform(43, 0.1)));
    assert_ne!(serial, other, "seed must pin the fault pattern");
    assert!(other_outcome.accounting().balanced());

    // …while a zero fault rate is byte-identical to no chaos at all, with
    // an all-quiet ledger and no accounting sections.
    let (_, zero_rate) = run_and_render(Some(ChaosConfig::uniform(42, 0.0)));
    let (clean_outcome, clean) = run_and_render(None);
    assert_eq!(zero_rate, clean, "fault-rate 0 must not perturb reports");
    assert!(!clean_outcome.accounting().faulted());
    assert!(!clean.contains("### Response accounting"));
}
