//! Integration tests for the prediction service: the line protocol end
//! to end, transcript invariance across admission batch sizes and cache
//! bounds, and ledger balance.
//!
//! Everything runs inside one `#[test]` so the `RAYON_NUM_THREADS` flip
//! cannot race another test in this binary (same pattern as
//! `tests/determinism.rs` and `tests/cache_golden.rs`).

use std::io::Cursor;

use parallel_code_estimation::core::caches::CacheBudget;
use parallel_code_estimation::core::serve::{Command, Job, PredictionService};
use parallel_code_estimation::core::study::Study;
use parallel_code_estimation::prompt::ShotStyle;

/// A small deterministic job mix over the smoke corpus: every job is a
/// protocol line so the same bytes drive `serve_lines`.
fn job_lines(service: &PredictionService) -> Vec<String> {
    let programs = service.programs();
    let specs = ["rtx-3080", "h100-sxm", "mi250x", "epyc-9654"];
    let models = ["o3-mini", "gpt-4o-mini", "gemini-2.0-flash-001"];
    (0..24)
        .map(|i| {
            let p = &programs[(i * 7) % programs.len()];
            format!(
                "predict id=j{i} kernel={} spec={} model={} shots={}",
                p.id,
                specs[i % specs.len()],
                models[i % models.len()],
                if i % 2 == 0 { "zero" } else { "few" },
            )
        })
        .collect()
}

/// Run a full protocol session and return the response transcript.
fn session(service: &PredictionService, input: &str, batch: usize) -> String {
    let mut out = Vec::new();
    service
        .serve_lines(Cursor::new(input.as_bytes()), &mut out, batch)
        .expect("session runs");
    String::from_utf8(out).expect("transcript is UTF-8")
}

#[test]
fn serve_protocol_is_deterministic_bounded_and_ledger_balanced() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let study = Study::smoke();
    let service = PredictionService::new(study.clone(), None).expect("service builds");
    let lines = job_lines(&service);
    let input = format!("{}\nstats\nquit\n", lines.join("\n"));

    // --- The happy path: every job answers with a well-formed ok line,
    // in request order, and the trailing stats line balances.
    let transcript = session(&service, &input, 8);
    let rows: Vec<&str> = transcript.lines().collect();
    assert_eq!(rows.len(), lines.len() + 1, "{transcript}");
    for (i, row) in rows[..lines.len()].iter().enumerate() {
        assert!(row.starts_with(&format!("ok id=j{i} ")), "{row}");
        assert!(
            row.contains("prediction=") && row.contains("truth=") && row.contains("correct="),
            "{row}"
        );
    }
    let stats = rows[lines.len()];
    assert!(stats.starts_with("stats jobs=24 "), "{stats}");
    assert!(stats.contains("ledger_balanced=true"), "{stats}");
    assert!(service.ledger_balanced());
    assert_eq!(service.jobs_served(), 24);

    // --- Batch-size invariance: the same stream, admitted 1, 5, or all
    // at a time, produces byte-identical response transcripts (stats
    // excluded — cache totals legitimately differ with grouping).
    let predict_only = format!("{}\nquit\n", lines.join("\n"));
    let reference = session(
        &PredictionService::new(study.clone(), None).expect("service builds"),
        &predict_only,
        24,
    );
    for batch in [1, 5, 100] {
        let got = session(
            &PredictionService::new(study.clone(), None).expect("service builds"),
            &predict_only,
            batch,
        );
        assert_eq!(reference, got, "batch={batch} diverged");
    }

    // --- Bounded-vs-unbounded identity: a tiny budget forces evictions
    // yet the response bytes cannot change.
    let bounded = PredictionService::new(study.clone(), Some(CacheBudget::uniform(64 * 1024)))
        .expect("service builds");
    let got = session(&bounded, &predict_only, 8);
    assert_eq!(reference, got, "bounded transcript diverged");
    let report = bounded.caches().report();
    assert!(report.total_evictions() > 0, "{report:?}");
    assert!(bounded.ledger_balanced());

    // --- Thread-count invariance on a fresh bounded service.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = PredictionService::new(study.clone(), Some(CacheBudget::uniform(64 * 1024)))
        .expect("service builds");
    let got = session(&serial, &predict_only, 8);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(reference, got, "serial transcript diverged");

    // --- Bad jobs get err lines and never poison the batch around them.
    let mixed = "predict id=ok1 kernel=KER spec=rtx-3080 model=o3-mini shots=zero\n\
                 predict id=bad1 kernel=nope spec=rtx-3080 model=o3-mini shots=zero\n\
                 predict id=bad2 kernel=KER spec=not-a-spec model=o3-mini shots=zero\n\
                 predict id=bad3 kernel=KER spec=rtx-3080 model=not-a-model shots=few\n\
                 garbage line\n\
                 quit\n";
    let service = PredictionService::new(study, None).expect("service builds");
    let kernel = service.programs()[0].id.clone();
    let transcript = session(&service, &mixed.replace("KER", &kernel), 100);
    let rows: Vec<&str> = transcript.lines().collect();
    assert_eq!(rows.len(), 5, "{transcript}");
    // The malformed line errors immediately (before the batch flushes).
    assert!(rows[0].starts_with("err id=- kind=parse"), "{}", rows[0]);
    assert!(rows[1].starts_with("ok id=ok1 "), "{}", rows[1]);
    assert!(rows[2].starts_with("err id=bad1 kind=spec"), "{}", rows[2]);
    assert!(rows[3].starts_with("err id=bad2 kind=spec"), "{}", rows[3]);
    assert!(rows[4].starts_with("err id=bad3 kind=spec"), "{}", rows[4]);
    assert!(service.ledger_balanced());

    // --- Protocol edges: EOF without quit flushes pending jobs; parse
    // round-trips the documented grammar.
    let service2 = PredictionService::new(Study::smoke(), None).expect("service builds");
    let kernel = service2.programs()[0].id.clone();
    let eof_input = format!("predict id=x kernel={kernel} spec=rtx-3080 model=o3-mini shots=few\n");
    let transcript = session(&service2, &eof_input, 100);
    assert!(transcript.starts_with("ok id=x "), "{transcript}");
    assert_eq!(
        Command::parse(&format!(
            "predict id=x kernel={kernel} spec=rtx-3080 model=o3-mini shots=few"
        )),
        Ok(Command::Predict(Job {
            id: "x".into(),
            kernel,
            spec: "rtx-3080".into(),
            model: "o3-mini".into(),
            style: ShotStyle::FewShot,
            deadline_ms: None,
            src: None,
        }))
    );
}
