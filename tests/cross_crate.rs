//! Cross-crate contract tests: the prompt renderer and the surrogate
//! engine's parser must agree (the engine sees only text, like a hosted
//! model); the corpus, analyzer, and simulator must tell consistent
//! stories about the same kernels.

use std::collections::BTreeMap;

use parallel_code_estimation::gpu_sim::Profiler;
use parallel_code_estimation::kernels::{build_corpus, CorpusConfig, Language};
use parallel_code_estimation::prompt::{
    generate_rq1_suite, render_classify_prompt, render_rq1_prompt, ClassifyRequest, ShotStyle,
};
use parallel_code_estimation::roofline::HardwareSpec;
use parallel_code_estimation::static_analysis::{analyze, AnalyzeOptions};

use pce_llm::parse::{bind_args_to_params, parse_classify, parse_rq1};

fn corpus() -> Vec<parallel_code_estimation::kernels::Program> {
    build_corpus(&CorpusConfig {
        seed: 77,
        cuda_programs: 40,
        omp_programs: 24,
    })
    .expect("corpus builds")
}

#[test]
fn classify_prompts_round_trip_for_every_corpus_program() {
    let hw = HardwareSpec::rtx_3080();
    for p in corpus() {
        let req = ClassifyRequest {
            language: p.language.label().to_string(),
            kernel_name: p.kernel_name.clone(),
            hardware: hw.clone(),
            geometry: p.launch.geometry_string(),
            args: p.args.clone(),
            source: p.source.clone(),
        };
        for style in [ShotStyle::ZeroShot, ShotStyle::FewShot] {
            let prompt = render_classify_prompt(&req, style);
            let parsed = parse_classify(&prompt)
                .unwrap_or_else(|e| panic!("{}: prompt failed to parse: {e}", p.id));
            assert_eq!(parsed.language, p.language.label(), "{}", p.id);
            assert_eq!(parsed.kernel_name, p.kernel_name, "{}", p.id);
            assert_eq!(parsed.bandwidth, hw.bandwidth_gbs, "{}", p.id);
            assert_eq!(parsed.args, p.args, "{}", p.id);
            assert!(parsed.source.contains(p.kernel_name.as_str()) || p.language == Language::Omp);
        }
    }
}

#[test]
fn rq1_prompts_round_trip_for_every_item() {
    let suite = generate_rq1_suite(30, 5);
    for (i, item) in suite.items.iter().enumerate() {
        let prompt = render_rq1_prompt(&suite, i, 4, i % 2 == 0);
        let parsed = parse_rq1(&prompt).expect("RQ1 prompt must parse");
        assert_eq!(parsed.ai, item.ai, "item {i}");
        assert_eq!(parsed.bandwidth_gbs, item.bandwidth_gbs, "item {i}");
        assert_eq!(parsed.peak_gflops, item.peak_gflops, "item {i}");
    }
}

#[test]
fn arg_binding_recovers_problem_sizes_from_generated_mains() {
    // CUDA programs parse their argv with the `(argc > K) ? ... : default`
    // idiom; the engine's reader must recover the actual launch sizes.
    let mut bound = 0;
    let mut total = 0;
    for p in corpus().iter().filter(|p| p.language == Language::Cuda) {
        total += 1;
        let params = bind_args_to_params(&p.source, &p.args);
        if params.is_empty() {
            continue;
        }
        bound += 1;
        // Whatever was bound must match the actual CLI args.
        for (name, value) in &params {
            if let Some(pos) = first_scalar_position(&p.source, name) {
                if let Some(arg) = p.args.get(pos) {
                    assert_eq!(
                        arg.parse::<u64>().ok(),
                        Some(*value),
                        "{}: param {name}",
                        p.id
                    );
                }
            }
        }
    }
    assert!(
        bound * 10 >= total * 9,
        "arg binding should succeed for most programs: {bound}/{total}"
    );
}

/// Find which positional argument a scalar is parsed from (testing aid).
fn first_scalar_position(source: &str, name: &str) -> Option<usize> {
    for line in source.lines() {
        let t = line.trim_start();
        if t.contains(&format!(" {name} = (argc > "))
            || t.starts_with(&format!("{name} = (argc > "))
        {
            let idx = t.find("argc > ")? + "argc > ".len();
            let n: String = t[idx..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            return n.parse::<usize>().ok().map(|k| k - 1);
        }
    }
    None
}

#[test]
fn static_analyzer_finds_the_profiled_kernel_in_every_cuda_program() {
    for p in corpus().iter().filter(|p| p.language == Language::Cuda) {
        let analysis = analyze(&p.source, &AnalyzeOptions::default());
        assert!(
            analysis.kernels.iter().any(|k| k.name == p.kernel_name),
            "{}: kernel {} not found (found: {:?})",
            p.id,
            p.kernel_name,
            analysis.kernels.iter().map(|k| &k.name).collect::<Vec<_>>()
        );
    }
}

#[test]
fn omp_programs_analyze_to_target_regions() {
    for p in corpus().iter().filter(|p| p.language == Language::Omp) {
        let analysis = analyze(&p.source, &AnalyzeOptions::default());
        assert!(
            !analysis.kernels.is_empty(),
            "{}: no target region recovered",
            p.id
        );
        assert!(analysis.kernels[0].is_omp, "{}", p.id);
    }
}

#[test]
fn simulator_and_analyzer_agree_on_flop_precision_class() {
    // For simple elementwise kernels, the op-class the profiler measures
    // as dominant should also carry nonzero statically-estimated ops.
    let hw = HardwareSpec::rtx_3080();
    let profiler = Profiler::new(hw);
    for p in corpus().iter().filter(|p| {
        p.language == Language::Cuda && matches!(p.family.as_str(), "saxpy" | "vecadd" | "triad")
    }) {
        let profile = profiler.profile(&p.ir, &p.launch);
        let mut params = BTreeMap::new();
        for (k, v) in &p.launch.params {
            params.insert(k.clone(), *v);
        }
        let analysis = analyze(
            &p.source,
            &AnalyzeOptions {
                params,
                ..Default::default()
            },
        );
        let kernel = analysis
            .kernels
            .iter()
            .find(|k| k.name == p.kernel_name)
            .expect("kernel present");
        if profile.counts.flops_dp > 0 {
            assert!(kernel.tally.flops_dp > 0.0, "{}: DP mismatch", p.id);
            assert_eq!(kernel.tally.flops_sp, 0.0, "{}: SP bleed", p.id);
        } else if profile.counts.flops_sp > 0 {
            assert!(kernel.tally.flops_sp > 0.0, "{}: SP mismatch", p.id);
        }
    }
}

#[test]
fn fast_bpe_matches_naive_reference_on_a_real_corpus_at_vocab_1200() {
    // The acceptance bar for the tokenizer fast path: at the pipeline's
    // default vocabulary (1200) over generated corpus source, the
    // incremental trainer must produce a bit-identical merge table to the
    // naive recount-per-merge reference, and the heap-merge encoder must
    // produce identical ids.
    use parallel_code_estimation::tokenizer::{reference, BpeTrainer, Tokenizer};
    let programs = corpus();
    let docs: Vec<&str> = programs.iter().map(|p| p.source.as_str()).collect();
    let fast = BpeTrainer::new(1200).train(docs.iter().copied());
    let naive = reference::naive_train(1200, 2, docs.iter().copied());
    assert_eq!(fast, naive, "merge tables diverged at vocab 1200");

    let tok = Tokenizer::new(fast);
    for (p, doc) in programs.iter().zip(&docs) {
        let heap_ids = tok.encode(doc);
        assert_eq!(heap_ids, reference::naive_encode(&tok, doc), "{}", p.id);
        assert_eq!(tok.decode(&heap_ids), **doc, "{}: lossless decode", p.id);
    }
}
