//! Language-aware spec routing, end to end: every OMP sample must be
//! profiled, labeled, and prompted against the CPU spec, every CUDA
//! sample against the GPU spec; warm cache bundles must never serve a
//! profile across machine classes; and the re-pinned label golden proves
//! CUDA ground truth is byte-identical to the legacy (GPU-everything)
//! labeling while the OMP half moves to the CPU roofline.

use parallel_code_estimation::core::caches::SuiteCaches;
use parallel_code_estimation::core::experiments::rq23::prompt_for_sample;
use parallel_code_estimation::core::study::Study;
use parallel_code_estimation::dataset::{run_pipeline_cached, tokenize_corpus};
use parallel_code_estimation::gpu_sim::Profiler;
use parallel_code_estimation::kernels::{build_corpus, Language};
use parallel_code_estimation::prompt::ShotStyle;
use parallel_code_estimation::roofline::{classify_joint, Boundedness, HardwareSpec, SpecClass};

#[test]
fn every_sample_stores_and_prompts_its_languages_spec() {
    let study = Study::smoke();
    let corpus = build_corpus(&study.corpus).expect("corpus builds");
    let tokenized = tokenize_corpus(&corpus, &study.pipeline);
    let caches = SuiteCaches::new();
    let (dataset, split, _) =
        run_pipeline_cached(&corpus, &tokenized, &study.pipeline, &caches.sim);

    let gpu = &study.pipeline.specs.gpu;
    let cpu = &study.pipeline.specs.cpu;
    let mut saw = (false, false);
    for s in dataset
        .samples
        .iter()
        .chain(&split.train.samples)
        .chain(&split.validation.samples)
    {
        match s.language {
            Language::Cuda => {
                saw.0 = true;
                assert_eq!(s.spec_class, SpecClass::Gpu, "{}", s.id);
                assert_eq!(s.spec_name, gpu.name, "{}", s.id);
            }
            Language::Omp => {
                saw.1 = true;
                assert_eq!(s.spec_class, SpecClass::Cpu, "{}", s.id);
                assert_eq!(s.spec_name, cpu.name, "{}", s.id);
            }
        }
    }
    assert!(saw.0 && saw.1, "dataset must carry both languages");

    // Prompts render the language-routed spec's name and roofline numbers.
    let cuda = dataset
        .samples
        .iter()
        .find(|s| s.language == Language::Cuda)
        .unwrap();
    let omp = dataset
        .samples
        .iter()
        .find(|s| s.language == Language::Omp)
        .unwrap();
    for style in [ShotStyle::ZeroShot, ShotStyle::FewShot] {
        let cuda_prompt = prompt_for_sample(&study, cuda, style);
        assert!(cuda_prompt.contains(&gpu.name), "CUDA prompt lost the GPU");
        assert!(cuda_prompt.contains("29770"), "CUDA prompt lost GPU peaks");
        assert!(!cuda_prompt.contains(&cpu.name));

        let omp_prompt = prompt_for_sample(&study, omp, style);
        assert!(omp_prompt.contains(&cpu.name), "OMP prompt lost the CPU");
        assert!(
            omp_prompt.contains("7372.8"),
            "OMP prompt lost the CPU SP peak"
        );
        assert!(
            omp_prompt.contains("460.8"),
            "OMP prompt lost the CPU bandwidth"
        );
        assert!(!omp_prompt.contains(&gpu.name));
    }
}

#[test]
fn warm_caches_never_cross_serve_profiles_between_classes() {
    let study = Study::smoke();
    let corpus = build_corpus(&study.corpus).expect("corpus builds");
    let tokenized = tokenize_corpus(&corpus, &study.pipeline);
    let cuda_count = corpus
        .iter()
        .filter(|p| p.language == Language::Cuda)
        .count();
    let omp_count = corpus.len() - cuda_count;

    let caches = SuiteCaches::new();
    let (dataset, _, _) = run_pipeline_cached(&corpus, &tokenized, &study.pipeline, &caches.sim);

    // Exactly one profile per kernel: each kernel was resolved against
    // one spec (its language's), never both.
    assert_eq!(caches.sim.profiles().len(), corpus.len());
    assert_eq!(
        caches.sim.profiles().counters().misses as usize,
        corpus.len()
    );

    // Every stored sample's counters reproduce under a fresh,
    // cache-free profiler of its own class — and for OMP kernels they
    // must *differ* from what the GPU spec would have produced (the two
    // machine models disagree on cache behavior), so a cross-served
    // profile could not have gone unnoticed.
    let gpu_prof = Profiler::new(study.pipeline.specs.gpu.clone());
    let cpu_prof = Profiler::new(study.pipeline.specs.cpu.clone());
    let mut omp_counts_diverge = false;
    for s in dataset.samples.iter().take(40) {
        let p = corpus.iter().find(|p| p.id == s.id).unwrap();
        let routed = match s.language {
            Language::Cuda => &gpu_prof,
            Language::Omp => &cpu_prof,
        };
        assert_eq!(
            routed.profile(&p.ir, &p.launch).counts,
            s.counts,
            "{}: stored counts don't match the routed spec",
            s.id
        );
        if s.language == Language::Omp && gpu_prof.profile(&p.ir, &p.launch).counts != s.counts {
            omp_counts_diverge = true;
        }
    }
    assert!(
        omp_counts_diverge,
        "some OMP profile must differ between GPU and CPU machine models"
    );

    // Warm rerun: every lookup hits; nothing new is inserted.
    let before = caches.sim.profiles().counters();
    let _ = run_pipeline_cached(&corpus, &tokenized, &study.pipeline, &caches.sim);
    let after = caches.sim.profiles().counters();
    assert_eq!(after.hits - before.hits, corpus.len() as u64);
    assert_eq!(after.misses, before.misses);
    assert_eq!(caches.sim.profiles().len(), corpus.len());

    // Moving only the CPU spec re-profiles only the OMP half; the CUDA
    // half is served from the memo under its unchanged GPU key.
    let mut moved = study.pipeline.clone();
    moved.specs.cpu = HardwareSpec::xeon_8480p();
    let before = caches.sim.profiles().counters();
    let _ = run_pipeline_cached(&corpus, &tokenized, &moved, &caches.sim);
    let after = caches.sim.profiles().counters();
    assert_eq!(after.misses - before.misses, omp_count as u64);
    assert_eq!(after.hits - before.hits, cuda_count as u64);
    assert_eq!(caches.sim.profiles().len(), corpus.len() + omp_count);
}

#[test]
fn label_golden_cuda_identical_omp_repinned() {
    // The deliberate re-pin this PR ships: against the legacy labeling
    // (everything profiled and classified on the RTX 3080), the CUDA half
    // is byte-identical, while the OMP half moves to the EPYC 9654
    // roofline. The exact smoke-scale delta is pinned so any future
    // change to CPU presets or routing shows up here, on purpose.
    let study = Study::smoke();
    let corpus = build_corpus(&study.corpus).expect("corpus builds");
    let tokenized = tokenize_corpus(&corpus, &study.pipeline);
    let caches = SuiteCaches::new();
    let (_, _, report) = run_pipeline_cached(&corpus, &tokenized, &study.pipeline, &caches.sim);

    let gpu = study.pipeline.specs.gpu.clone();
    let cpu = study.pipeline.specs.cpu.clone();
    assert_eq!(gpu.name, "NVIDIA GeForce RTX 3080", "paper GPU moved");
    assert_eq!(cpu.name, "AMD EPYC 9654", "paper-default CPU moved");

    let legacy_prof = Profiler::new(gpu.clone());
    let cpu_prof = Profiler::new(cpu.clone());
    let (mut omp_total, mut omp_relabeled) = (0usize, 0usize);
    let (mut cb_legacy, mut cb_new) = (0usize, 0usize);
    for (i, p) in corpus.iter().enumerate() {
        let legacy = classify_joint(&gpu, &legacy_prof.profile(&p.ir, &p.launch).counts).label;
        let new = report.corpus_labels[i];
        match p.language {
            Language::Cuda => {
                assert_eq!(new, legacy, "{}: CUDA label moved", p.id);
            }
            Language::Omp => {
                // The new label is exactly the CPU-roofline classification.
                let expected =
                    classify_joint(&cpu, &cpu_prof.profile(&p.ir, &p.launch).counts).label;
                assert_eq!(new, expected, "{}: OMP label is not the CPU's", p.id);
                omp_total += 1;
                omp_relabeled += (new != legacy) as usize;
                cb_legacy += (legacy == Boundedness::Compute) as usize;
                cb_new += (new == Boundedness::Compute) as usize;
            }
        }
    }
    // Pinned smoke-scale label delta (see README "hardware catalog"):
    // 22 of 90 OMP kernels relabel, compute-bound count 41 -> 29.
    assert_eq!(omp_total, 90);
    assert_eq!(
        omp_relabeled, 22,
        "OMP label delta moved — re-pin deliberately"
    );
    assert_eq!((cb_legacy, cb_new), (41, 29));
}
