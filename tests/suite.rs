//! End-to-end tests for the cross-hardware suite: the shared build must
//! be exactly equivalent to rebuilding every spec from scratch, the
//! corpus/tokenizer work must be shared (not redone per spec), and the
//! hardware matrix must actually flip kernel labels.

use parallel_code_estimation::core::study::StudyData;
use parallel_code_estimation::core::suite::{run_suite_shared, SharedBuild, Suite};
use parallel_code_estimation::core::table1::build_table1;
use parallel_code_estimation::roofline::{Boundedness, HardwareSpec};

fn small_suite() -> Suite {
    // Three specs spanning the catalog's extremes: consumer 1/64-rate DP
    // (3080), balanced datacenter (A100), bandwidth-rich full-rate DP
    // (MI250X).
    Suite::smoke_with_specs(vec![
        HardwareSpec::rtx_3080(),
        HardwareSpec::a100(),
        HardwareSpec::mi250x(),
    ])
}

#[test]
fn shared_build_is_equivalent_to_independent_rebuilds() {
    let suite = small_suite();
    let shared = SharedBuild::build(&suite);
    let outcome = run_suite_shared(&suite, &shared);
    assert_eq!(outcome.specs.len(), suite.specs.len());

    for (hw, spec_out) in suite.specs.iter().zip(&outcome.specs) {
        // Rebuild this spec completely from scratch: fresh corpus, fresh
        // tokenizer training, fresh RQ1 runs.
        let study = suite.base.with_hardware(hw.clone());
        let data = StudyData::build(&study);
        let table = build_table1(&study, &data);

        assert_eq!(spec_out.funnel, data.report, "{}: funnel diverged", hw.name);
        assert_eq!(
            spec_out.table, table,
            "{}: Table 1 diverged from a from-scratch rebuild",
            hw.name
        );
        let ids: Vec<String> = data.dataset.samples.iter().map(|s| s.id.clone()).collect();
        assert_eq!(spec_out.dataset_ids, ids, "{}", hw.name);
    }
}

#[test]
fn corpus_and_tokenizer_are_built_once_and_shared() {
    let suite = small_suite();
    let shared = SharedBuild::build(&suite);
    let outcome = run_suite_shared(&suite, &shared);

    // Every spec's funnel must carry the *shared* tokenization verbatim —
    // the raw token distribution comes straight from `shared.tokenized`,
    // not from a per-spec retrain.
    assert!(shared.tokenized.raw_token_stats.is_some());
    assert_eq!(shared.tokenized.token_counts.len(), shared.corpus.len());
    for spec_out in &outcome.specs {
        assert_eq!(
            spec_out.funnel.raw_token_stats, shared.tokenized.raw_token_stats,
            "{}: tokenization was not shared",
            spec_out.spec.name
        );
        // Hardware never changes what was built, only how it is labeled.
        let built: usize = spec_out.funnel.built.values().sum();
        assert_eq!(built, shared.corpus.len(), "{}", spec_out.spec.name);
        assert_eq!(
            spec_out.funnel.corpus_labels.len(),
            shared.corpus.len(),
            "{}",
            spec_out.spec.name
        );
    }
}

#[test]
fn at_least_one_kernel_flips_between_presets() {
    let suite = small_suite();
    let outcome = run_suite_shared(&suite, &SharedBuild::build(&suite));
    let flips = &outcome.flips;

    assert!(
        flips.flipping >= 1,
        "no corpus kernel flipped boundedness anywhere in the matrix"
    );
    assert!(
        flips.flipping < flips.kernels.len(),
        "every kernel flipped — labels degenerate"
    );
    // A flipping kernel really does carry two distinct labels.
    let flipper = flips.kernels.iter().find(|k| k.flips()).unwrap();
    assert!(flipper.labels.contains(&Boundedness::Compute));
    assert!(flipper.labels.contains(&Boundedness::Bandwidth));
    // And the reference column of `flips_vs_reference` is zero by
    // definition, while some other spec disagrees with it.
    assert_eq!(flips.flips_vs_reference[0], 0);
    assert!(flips.flips_vs_reference.iter().any(|&n| n > 0));
    // Both accuracy pools exist at this scale (flipping and stable
    // kernels both reach the balanced dataset).
    assert!(flips.accuracy_on_flipping.is_some());
    assert!(flips.accuracy_on_stable.is_some());
}

#[test]
fn suite_smoke_covers_at_least_six_presets() {
    // Acceptance: the `suite` binary's default matrix (all presets) spans
    // ≥ 6 specs at smoke scale. Structural check here; CI runs the bin.
    assert!(Suite::smoke().specs.len() >= 6);
    assert!(Suite::default().specs.len() >= 6);
    for hw in &Suite::smoke().specs {
        assert!(hw.validate().is_empty(), "{} invalid", hw.name);
    }
}
