//! End-to-end tests for the cross-hardware suite: the shared build must
//! be exactly equivalent to rebuilding every (GPU, CPU) cell from
//! scratch, the corpus/tokenizer work must be shared (not redone per
//! cell), and each language's hardware axis must actually flip its own
//! kernels' labels.

use parallel_code_estimation::core::study::StudyData;
use parallel_code_estimation::core::suite::{run_suite_shared, SharedBuild, Suite};
use parallel_code_estimation::core::table1::build_table1;
use parallel_code_estimation::kernels::Language;
use parallel_code_estimation::roofline::{Boundedness, HardwareSpec};

fn small_suite() -> Suite {
    // Three GPU specs spanning the catalog's extremes: consumer 1/64-rate
    // DP (3080), balanced datacenter (A100), bandwidth-rich full-rate DP
    // (MI250X) — each paired with EPYC 9654 (SP ridge 16.0) and Xeon
    // 8480+ (23.3): the corpus has kernels between those two ridges, so
    // the OMP half genuinely flips along the CPU axis (Grace at 13.1 sits
    // too close to the EPYC to bracket any).
    Suite::smoke_with_matrix(
        vec![
            HardwareSpec::rtx_3080(),
            HardwareSpec::a100(),
            HardwareSpec::mi250x(),
        ],
        vec![HardwareSpec::epyc_9654(), HardwareSpec::xeon_8480p()],
    )
}

#[test]
fn shared_build_is_equivalent_to_independent_rebuilds() {
    let suite = small_suite();
    let shared = SharedBuild::build(&suite).expect("shared build");
    let outcome = run_suite_shared(&suite, &shared).unwrap();
    assert_eq!(outcome.completed().len(), suite.cells().len());

    for (pair, spec_out) in suite.cells().iter().zip(outcome.completed()) {
        // Rebuild this cell completely from scratch: fresh corpus, fresh
        // tokenizer training, fresh RQ1 runs.
        let study = suite.base.with_specs(pair.clone());
        let data = StudyData::build(&study).expect("study builds");
        let table = build_table1(&study, &data);

        let label = pair.label();
        assert_eq!(spec_out.funnel, data.report, "{label}: funnel diverged");
        assert_eq!(
            spec_out.table, table,
            "{label}: Table 1 diverged from a from-scratch rebuild"
        );
        let ids: Vec<String> = data.dataset.samples.iter().map(|s| s.id.clone()).collect();
        assert_eq!(spec_out.dataset_ids, ids, "{label}");
    }
}

#[test]
fn corpus_and_tokenizer_are_built_once_and_shared() {
    let suite = small_suite();
    let shared = SharedBuild::build(&suite).expect("shared build");
    let outcome = run_suite_shared(&suite, &shared).unwrap();

    // Every cell's funnel must carry the *shared* tokenization verbatim —
    // the raw token distribution comes straight from `shared.tokenized`,
    // not from a per-cell retrain.
    assert!(shared.tokenized.raw_token_stats.is_some());
    assert_eq!(shared.tokenized.token_counts.len(), shared.corpus.len());
    for spec_out in outcome.completed() {
        assert_eq!(
            spec_out.funnel.raw_token_stats,
            shared.tokenized.raw_token_stats,
            "{}: tokenization was not shared",
            spec_out.pair_label()
        );
        // Hardware never changes what was built, only how it is labeled.
        let built: usize = spec_out.funnel.built.values().sum();
        assert_eq!(built, shared.corpus.len(), "{}", spec_out.pair_label());
        assert_eq!(
            spec_out.funnel.corpus_labels.len(),
            shared.corpus.len(),
            "{}",
            spec_out.pair_label()
        );
    }
}

#[test]
fn each_language_flips_along_its_own_axis() {
    let suite = small_suite();
    let outcome =
        run_suite_shared(&suite, &SharedBuild::build(&suite).expect("shared build")).unwrap();
    let flips = &outcome.flips;

    for section in &flips.by_language {
        assert!(
            section.flipping >= 1,
            "no {} kernel flipped along the {} axis",
            section.language,
            section.axis_class
        );
        assert!(
            section.flipping < section.kernels.len(),
            "every {} kernel flipped — labels degenerate",
            section.language
        );
        // A flipping kernel really does carry two distinct labels.
        let flipper = section.kernels.iter().find(|k| k.flips()).unwrap();
        assert!(flipper.labels.contains(&Boundedness::Compute));
        assert!(flipper.labels.contains(&Boundedness::Bandwidth));
        // The reference column of `flips_vs_reference` is zero by
        // definition, while some other axis spec disagrees with it.
        assert_eq!(section.flips_vs_reference[0], 0);
        assert!(section.flips_vs_reference.iter().any(|&n| n > 0));
        // Both accuracy pools exist at this scale (flipping and stable
        // kernels both reach the balanced dataset).
        assert!(
            section.accuracy_on_flipping.is_some(),
            "{}",
            section.language
        );
        assert!(section.accuracy_on_stable.is_some(), "{}", section.language);
    }
    assert_eq!(
        flips.flipping,
        flips.by_language.iter().map(|l| l.flipping).sum::<usize>()
    );
    // The two sections partition the corpus.
    let cuda = flips.language(Language::Cuda).unwrap();
    let omp = flips.language(Language::Omp).unwrap();
    assert_eq!(
        cuda.kernels.len() + omp.kernels.len(),
        SharedBuild::build(&suite)
            .expect("shared build")
            .corpus
            .len()
    );
}

#[test]
fn suite_smoke_covers_the_preset_catalog() {
    // Acceptance: the `suite` binary's default matrix (all presets) spans
    // ≥ 6 GPU specs × ≥ 3 CPU specs at smoke scale. Structural check
    // here; CI runs the bin.
    assert!(Suite::smoke().specs.len() >= 6);
    assert!(Suite::smoke().cpu_specs.len() >= 3);
    assert!(Suite::default().specs.len() >= 6);
    assert!(Suite::default().cpu_specs.len() >= 3);
    for hw in Suite::smoke().specs.iter().chain(&Suite::smoke().cpu_specs) {
        assert!(hw.validate().is_empty(), "{} invalid", hw.name);
    }
    assert!(Suite::smoke().validate().is_empty());
}
