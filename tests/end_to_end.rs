//! End-to-end integration tests spanning every workspace crate: corpus →
//! profiling → dataset → prompts → surrogate models → metrics → artifacts.

use parallel_code_estimation::core::experiments::{
    run_classification, run_hyperparam_check, run_rq1, run_rq4,
};
use parallel_code_estimation::core::figures::{build_fig1, build_fig2};
use parallel_code_estimation::core::report;
use parallel_code_estimation::core::study::{Study, StudyData};
use parallel_code_estimation::core::table1::build_table1;
use parallel_code_estimation::llm::SurrogateEngine;
use parallel_code_estimation::prompt::ShotStyle;
use parallel_code_estimation::roofline::Boundedness;

fn study_and_data() -> (Study, StudyData) {
    let study = Study::smoke();
    let data = StudyData::build(&study).expect("study builds");
    (study, data)
}

#[test]
fn dataset_funnel_mirrors_the_papers_shape() {
    let (_, data) = study_and_data();
    // All four cells equal, dataset = 4 × cell.
    assert_eq!(data.dataset.len(), data.report.per_combo * 4);
    // 80/20 split within cells.
    let expected_train = (data.report.per_combo as f64 * 0.8).round() as usize * 4;
    assert_eq!(data.split.train.len(), expected_train);
    // Pruning dropped something (the corpus has a verbosity tail).
    let built: usize = data.report.built.values().sum();
    let kept: usize = data.report.after_prune.values().sum();
    assert!(kept < built);
    // Every sample respects the cutoff.
    assert!(data.dataset.samples.iter().all(|s| s.token_count <= 8_000));
}

#[test]
fn paper_scale_study_defaults_are_wired_through() {
    let study = Study::default();
    assert_eq!(study.corpus.cuda_programs, 446);
    assert_eq!(study.corpus.omp_programs, 303);
    assert_eq!(study.pipeline.per_combo_cap, 85);
    assert_eq!(study.rq1_rooflines, 240);
}

#[test]
fn rq1_hierarchy_reasoning_at_ceiling_standard_below() {
    let (study, _) = study_and_data();
    let engine = SurrogateEngine::new();
    let o3 = run_rq1(&study, &engine, "o3-mini-high");
    let mini = run_rq1(&study, &engine, "gpt-4o-mini");
    assert_eq!(o3.best_acc, 100.0);
    assert_eq!(o3.best_acc_cot, 100.0);
    assert!(mini.best_acc < 100.0);
    assert!(mini.best_acc_cot >= mini.best_acc);
}

#[test]
fn zero_shot_reasoning_advantage_and_sane_bands() {
    let (study, data) = study_and_data();
    let engine = SurrogateEngine::new();
    let strong = run_classification(
        &study,
        &engine,
        "o3-mini-high",
        &data.dataset.samples,
        ShotStyle::ZeroShot,
    );
    let weak = run_classification(
        &study,
        &engine,
        "gpt-4o-mini-2024-07-18",
        &data.dataset.samples,
        ShotStyle::ZeroShot,
    );
    assert!(strong.metrics.accuracy > weak.metrics.accuracy);
    assert!(strong.metrics.mcc > weak.metrics.mcc);
    // Nobody is anywhere near the RQ1 ceiling without profiling data.
    assert!(strong.metrics.accuracy < 85.0);
}

#[test]
fn rq4_collapse_reproduces() {
    let (study, data) = study_and_data();
    let out = run_rq4(&study, &data.split);
    // Collapse signature: predictions concentrate on one class. The
    // residual minority's MCC is noisy at smoke scale (n = 56), so the
    // concentration is the load-bearing assertion.
    assert!(out.prediction_concentration > 0.85);
    assert!(out.metrics.mcc.abs() < 50.0);
}

#[test]
fn hyperparameter_insensitivity_reproduces() {
    let (study, data) = study_and_data();
    let engine = SurrogateEngine::new();
    let check = run_hyperparam_check(&study, &engine, "gpt-4o-2024-11-20", &data.dataset.samples);
    assert!(!check.chi2.significant_at(0.05));
}

#[test]
fn figures_and_reports_render() {
    let (study, data) = study_and_data();
    let fig1 = build_fig1(&study, &data.corpus, true);
    assert!(fig1.sp_bb_fraction > 0.5); // BB majority, as in the paper
    let fig2 = build_fig2(&data.split);
    assert_eq!(fig2.rows.len(), 8);
    assert!(report::render_fig1_summary(&fig1).contains("BB fractions"));
    assert!(report::render_fig2(&fig2).contains("| train |"));
    assert!(report::render_funnel(&data.report).contains("balanced per-cell"));
}

#[test]
fn table1_smoke_has_paper_structure() {
    let (study, data) = study_and_data();
    let table = build_table1(&study, &data);
    assert_eq!(table.rows.len(), 9);
    let text = report::render_table1(&table);
    assert!(text.contains("o3-mini-high"));
    assert!(
        text.contains("| – | – |") || text.contains("| – |"),
        "omitted RQ1 cells render as –"
    );
    // Ground truth labels are balanced, so a majority-class predictor
    // cannot exceed ~50% + noise; every model should beat MCC -100.
    for row in &table.rows {
        assert!(row.rq2.mcc > -50.0, "{} degenerate", row.model);
    }
}

#[test]
fn engine_answers_are_always_parseable_class_tokens() {
    let (study, data) = study_and_data();
    let engine = SurrogateEngine::new();
    let out = run_classification(
        &study,
        &engine,
        "gemini-2.0-flash-001",
        &data.dataset.samples,
        ShotStyle::FewShot,
    );
    // No invalid answers: the prompt's single-word instruction works on
    // surrogates exactly as the paper reports for the hosted models.
    assert_eq!(out.confusion.invalid_pos + out.confusion.invalid_neg, 0);
    assert_eq!(out.metrics.n as usize, data.dataset.len());
    let _ = Boundedness::parse("Compute").unwrap();
}
