//! Fuzz-style property tests for the serve line protocol: whatever byte
//! stream a client throws at a session — junk lines, truncated or
//! spliced commands, interleaved `stats`/`drain`/`quit`, tight deadlines
//! against a bounded queue — the server must never panic, must answer
//! every processed line with exactly one response line, and must keep
//! the extended ledger balanced.
//!
//! The services are built once per process (corpus construction
//! dominates) and shared across proptest cases; the ledger invariant is
//! cumulative, so sharing strengthens rather than weakens the check.

use std::io::Cursor;
use std::sync::OnceLock;

use proptest::prelude::*;

use parallel_code_estimation::core::serve::{Command, PredictionService, ServeConfig};
use parallel_code_estimation::core::study::{ChaosConfig, Study};
use parallel_code_estimation::fault::WireRates;

fn service() -> &'static PredictionService {
    static SERVICE: OnceLock<PredictionService> = OnceLock::new();
    SERVICE.get_or_init(|| PredictionService::new(Study::smoke(), None).expect("service builds"))
}

/// A second service with engine + wire chaos switched on, for the
/// torn-line/disconnect/stall paths.
fn chaotic_service() -> &'static PredictionService {
    static SERVICE: OnceLock<PredictionService> = OnceLock::new();
    SERVICE.get_or_init(|| {
        let mut study = Study::smoke();
        let mut chaos = ChaosConfig::uniform(0xf422, 0.2);
        chaos.plan = chaos.plan.with_wire(WireRates::uniform(0.25));
        study.chaos = Some(chaos);
        PredictionService::new(study, None).expect("service builds")
    })
}

/// A predict line over the smoke corpus (the kernel is real; spec and
/// model may or may not resolve, which must only ever produce an `err`
/// response, never a panic).
fn predict_line(code: u64) -> String {
    let programs = service().programs();
    let kernel = &programs[(code >> 8) as usize % programs.len()].id;
    let specs = ["rtx-3080", "h100-sxm", "epyc-9654", "not-a-spec"];
    let models = ["o3-mini", "gpt-4o-mini", "not-a-model"];
    format!(
        "predict id=f{} kernel={kernel} spec={} model={} shots={}",
        code % 997,
        specs[(code >> 16) as usize % specs.len()],
        models[(code >> 18) as usize % models.len()],
        if code & 1 == 0 { "zero" } else { "few" },
    )
}

/// Expand one random code (plus a pool of junk strings) into a protocol
/// line: mostly predicts, with control verbs, junk, deadline-carrying
/// jobs (when `deadlines` — an expired job answers out of request
/// order, so the strict-order property excludes them), and truncations.
fn build_line(code: u64, junk: &[String], deadlines: bool) -> String {
    match code % 8 {
        0..=2 => predict_line(code),
        3 if deadlines => format!("{} deadline_ms={}", predict_line(code), (code >> 20) % 40),
        3 => predict_line(code),
        4 => "stats".to_string(),
        5 => {
            if code & 0x100 == 0 {
                "drain".to_string()
            } else {
                "quit".to_string()
            }
        }
        6 => junk
            .get((code >> 8) as usize % junk.len().max(1))
            .cloned()
            .unwrap_or_else(|| "garbage line".to_string()),
        _ => {
            let full = predict_line(code);
            let mut cut = (code >> 24) as usize % (full.len() + 1);
            while cut > 0 && !full.is_char_boundary(cut) {
                cut -= 1;
            }
            full[..cut].to_string()
        }
    }
}

/// The oracle: replay `Command::parse` over the stream the way the
/// session does (skip blank lines, stop at `quit`) and predict the
/// response count and the ordered list of answered predict ids.
fn expected(lines: &[String]) -> (usize, Vec<String>, bool) {
    let mut responses = 0usize;
    let mut ids = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Command::parse(line) {
            Ok(Command::Quit) => return (responses, ids, true),
            Ok(Command::Predict(job)) => {
                responses += 1;
                ids.push(job.id);
            }
            Ok(_) | Err(_) => responses += 1,
        }
    }
    (responses, ids, false)
}

/// Pull the ordered `id=` tokens out of a transcript's ok/err lines,
/// skipping the parse-error placeholder id `-`.
fn answered_ids(transcript: &str) -> Vec<String> {
    transcript
        .lines()
        .filter(|l| l.starts_with("ok ") || l.starts_with("err "))
        .filter_map(|l| l.split_whitespace().find_map(|t| t.strip_prefix("id=")))
        .filter(|id| *id != "-")
        .map(str::to_string)
        .collect()
}

fn run(service: &PredictionService, lines: &[String], config: &ServeConfig) -> String {
    let input = lines.iter().map(|l| format!("{l}\n")).collect::<String>();
    let mut out = Vec::new();
    service
        .serve_session(Cursor::new(input.into_bytes()), &mut out, config)
        .expect("in-memory session cannot fail on io");
    String::from_utf8(out).expect("responses are utf-8")
}

proptest! {
    #[test]
    fn command_parse_never_panics(line in "\\PC{0,120}") {
        let _ = Command::parse(&line);
    }

    #[test]
    fn classic_sessions_answer_every_line_in_order(
        codes in prop::collection::vec(0u64..u64::MAX, 0..24),
        junk in prop::collection::vec("[ -~]{0,60}", 1..4),
    ) {
        let lines: Vec<String> = codes.iter().map(|&c| build_line(c, &junk, false)).collect();
        let transcript = run(service(), &lines, &ServeConfig::classic(5));
        let (want_responses, want_ids, quit) = expected(&lines);
        // One response per processed line, plus the EOF stats line when
        // the stream never said quit.
        let got = transcript.lines().count();
        prop_assert_eq!(got, want_responses + usize::from(!quit), "{}", transcript);
        // Unbounded sessions answer predicts in request order.
        prop_assert_eq!(answered_ids(&transcript), want_ids, "{}", transcript);
        prop_assert!(service().ledger_balanced());
        for line in transcript.lines() {
            prop_assert!(
                line.starts_with("ok ") || line.starts_with("err ") || line.starts_with("stats "),
                "{line}"
            );
        }
    }

    #[test]
    fn bounded_sessions_answer_every_predict_exactly_once(
        codes in prop::collection::vec(0u64..u64::MAX, 0..24),
        junk in prop::collection::vec("[ -~]{0,60}", 1..4),
        depth in 1usize..6,
        deadline in 0u64..50,
    ) {
        let lines: Vec<String> = codes.iter().map(|&c| build_line(c, &junk, true)).collect();
        let config = ServeConfig {
            batch: 4,
            queue_depth: Some(depth),
            // deadline < 40 exercises admission/completion expiry; larger
            // values leave the default (no deadline) path in play too.
            default_deadline_ms: if deadline < 40 { Some(deadline) } else { None },
            ..ServeConfig::default()
        };
        let transcript = run(service(), &lines, &config);
        let (want_responses, want_ids, quit) = expected(&lines);
        prop_assert_eq!(
            transcript.lines().count(),
            want_responses + usize::from(!quit),
            "{}", transcript
        );
        // Sheds answer out of order (immediately), but every predict is
        // still answered exactly once.
        let mut got = answered_ids(&transcript);
        let mut want = want_ids;
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "{}", transcript);
        prop_assert!(service().ledger_balanced());
    }

    #[test]
    fn chaotic_sessions_never_panic_and_stay_balanced(
        codes in prop::collection::vec(0u64..u64::MAX, 0..24),
        junk in prop::collection::vec("[ -~]{0,60}", 1..4),
        depth in 0usize..6,
    ) {
        // Wire faults tear/drop/stall lines, so the response-count oracle
        // no longer applies; surviving without panicking, answering only
        // well-formed one-liners, and keeping the ledger balanced is the
        // property under test.
        let lines: Vec<String> = codes.iter().map(|&c| build_line(c, &junk, true)).collect();
        let config = ServeConfig {
            batch: 4,
            queue_depth: if depth == 0 { None } else { Some(depth) },
            default_deadline_ms: Some(30),
            ..ServeConfig::default()
        };
        let transcript = run(chaotic_service(), &lines, &config);
        for line in transcript.lines() {
            prop_assert!(
                line.starts_with("ok ") || line.starts_with("err ") || line.starts_with("stats "),
                "{line}"
            );
        }
        prop_assert!(chaotic_service().ledger_balanced());
    }
}
