//! # parallel-code-estimation
//!
//! Umbrella crate for the Rust reproduction of *"Can Large Language Models
//! Predict Parallel Code Performance?"* (HPDC'25). It re-exports every
//! workspace crate under one roof so examples and downstream users can
//! depend on a single package:
//!
//! * [`roofline`] — the Roofline model (hardware specs, balance points,
//!   CB/BB classification),
//! * [`gpu_sim`] — the deterministic GPU simulator/profiler substrate,
//! * [`kernels`] — the HeCBench-like synthetic benchmark corpus,
//! * [`tokenizer`] — the byte-level BPE tokenizer,
//! * [`static_analysis`] — source-level arithmetic-intensity estimation,
//! * [`metrics`] — accuracy / macro-F1 / MCC and statistical tests,
//! * [`fault`] — the chaos layer: typed errors, seeded fault plans,
//!   bounded retries, and response accounting,
//! * [`llm`] — the surrogate LLM substrate (model zoo, engines, fine-tuning),
//! * [`prompt`] — prompt construction for RQ1–RQ3,
//! * [`dataset`] — the profiling → labeling → pruning → balancing pipeline,
//! * [`core`] — the experiment harness (RQ1–RQ4, Table 1, Figures 1–2).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use pce_core as core;
pub use pce_dataset as dataset;
pub use pce_fault as fault;
pub use pce_gpu_sim as gpu_sim;
pub use pce_kernels as kernels;
pub use pce_llm as llm;
pub use pce_metrics as metrics;
pub use pce_prompt as prompt;
pub use pce_roofline as roofline;
pub use pce_static_analysis as static_analysis;
pub use pce_tokenizer as tokenizer;
